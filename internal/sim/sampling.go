package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"morc/internal/cache"
	"morc/internal/mem"
	"morc/internal/sample"
	"morc/internal/stats"
	"morc/internal/telemetry"
	"morc/internal/trace"
)

// DefaultSamplingClusters is the k used when SamplingConfig.MaxClusters
// is 0.
const DefaultSamplingClusters = 8

// errSamplingDegenerate signals RunCtx that clustering put every
// interval in its own cluster, so the run should use the full-fidelity
// path instead (Result.Sampling stays nil).
var errSamplingDegenerate = errors.New("sim: sampling schedule covers every interval")

// SamplingConfig enables representative-interval sampling: instead of
// simulating the whole measurement window at full fidelity, the run is
// profiled into IntervalInstr-long intervals (morc/internal/sample),
// clustered by behavior signature, and only one representative interval
// per cluster is simulated in detail; the Result is extrapolated with
// cluster-population weights and carries a SamplingInfo describing the
// schedule and estimated error. Field names are deliberately plain so
// morcd config overrides ({"Sampling":{"IntervalInstr":...}}) mirror the
// rest of sim.Config.
type SamplingConfig struct {
	// IntervalInstr is the per-core interval length in instructions;
	// 0 disables sampling entirely. The measurement window is cut into
	// floor(MeasureInstr/IntervalInstr) intervals; a remainder shorter
	// than one interval is not simulated, and extrapolated counters are
	// scaled up to the full window. If fewer than two intervals fit, the
	// run silently falls back to full fidelity (Result.Sampling == nil).
	IntervalInstr uint64
	// MaxClusters is the k-means k (0 = DefaultSamplingClusters). The
	// detailed cost grows linearly with it; the error shrinks.
	MaxClusters int
	// ReplayInstr is the detailed cache-warmup replay simulated before
	// every representative window after the first (the first window is
	// reached by detailed simulation from instruction 0, covering the
	// run's full WarmupInstr). 0 = IntervalInstr/2.
	ReplayInstr uint64
	// Seed seeds the k-means clustering. Identical (workload, Config,
	// Seed) runs produce byte-identical Results, exactly like full runs.
	Seed uint64
}

// Enabled reports whether sampling is requested at all.
func (c SamplingConfig) Enabled() bool { return c.IntervalInstr > 0 }

// Validate rejects nonsensical knobs; RunCtx calls it at run start and
// morcd at submit time.
func (c SamplingConfig) Validate() error {
	if c.MaxClusters < 0 {
		return fmt.Errorf("sim: negative sampling MaxClusters %d", c.MaxClusters)
	}
	return nil
}

// SamplingWindow describes one simulated representative window on
// SamplingInfo: which interval it was, how many intervals it stands in
// for, and the headline metrics it measured — enough for a failing
// error-bound test to print the worst interval.
type SamplingWindow struct {
	// Interval is the representative's interval index (0-based within
	// the measurement window).
	Interval int
	// Population is the cluster size; Weight its fraction of all
	// intervals.
	Population int
	Weight     float64
	// Window metrics at full fidelity (per-core gmean IPC, LLC miss
	// rate, mean compression ratio).
	IPC       float64
	MissRate  float64
	CompRatio float64
}

// SamplingInfo is attached to Result.Sampling on sampled runs: the
// schedule, the simulated-instruction accounting behind the speedup
// claim, and the profiling pass's per-metric error estimates.
type SamplingInfo struct {
	IntervalInstr uint64
	// Intervals is how many intervals the window was cut into; Clusters
	// how many representatives were simulated in detail.
	Intervals int
	Clusters  int
	// KMeansIters / Converged report the clustering fixed point.
	KMeansIters int
	Converged   bool
	Windows     []SamplingWindow
	// DetailedInstr counts instructions simulated at full fidelity
	// (relocated warmup + replays + measured windows, all cores);
	// EquivalentInstr is what a full run would have simulated
	// (cores × (warmup + measure)); SpeedupX their ratio — the
	// instruction-reduction factor. ProfiledInstr is the functional
	// profiling pass's instruction count, disclosed separately because
	// a functional instruction costs far less than a detailed one.
	DetailedInstr   uint64
	EquivalentInstr uint64
	ProfiledInstr   uint64
	SpeedupX        float64
	// ErrorBars are the profiling pass's per-metric relative-error
	// estimates (population-weighted within-cluster spread). The hard
	// bound is pinned empirically by internal/check against full runs.
	ErrorBars sample.ErrorBars
}

// sampledIntervals returns how many whole intervals fit in the
// measurement window (0 when sampling is disabled).
func (cfg Config) sampledIntervals() int {
	if !cfg.Sampling.Enabled() {
		return 0
	}
	return int(cfg.MeasureInstr / cfg.Sampling.IntervalInstr)
}

// runSampled executes the sampled run: profile → cluster → replay each
// representative window at full fidelity in one forward pass →
// extrapolate. Caller guarantees sampledIntervals() >= 2.
func (s *System) runSampled(ctx context.Context) (Result, error) {
	cfg := s.cfg
	L := cfg.Sampling.IntervalInstr
	n := cfg.sampledIntervals()
	k := cfg.Sampling.MaxClusters
	if k == 0 {
		k = DefaultSamplingClusters
	}
	replay := cfg.Sampling.ReplayInstr
	if replay == 0 {
		replay = L / 2
	}

	prof, err := sample.Cached(ctx, sample.Spec{
		Programs:      s.programs,
		L1Bytes:       cfg.L1Bytes,
		L1Ways:        cfg.L1Ways,
		LLCBytes:      cfg.LLCBytesPerCore * cfg.Cores,
		WarmupInstr:   cfg.WarmupInstr,
		IntervalInstr: L,
		Intervals:     n,
	})
	if err != nil {
		return Result{}, err
	}
	plan := sample.Cluster(prof.Signatures, k, cfg.Sampling.Seed)
	if plan.K == 0 {
		return Result{}, fmt.Errorf("sim: sampling produced no clusters")
	}
	// Every interval its own cluster: the schedule would simulate the
	// whole window anyway, so sampling saves nothing — and on multi-core
	// runs the extra phase barriers at window boundaries perturb the
	// shared memory channel's arrival order, making the "estimate"
	// strictly worse than the full run it fails to shortcut. Fall back.
	if plan.K >= n {
		return Result{}, errSamplingDegenerate
	}

	var st *sampledTelemetry
	if cfg.Telemetry.Enabled() {
		st = &sampledTelemetry{scheme: cfg.Scheme.String(), every: cfg.Telemetry.Every, onEpoch: s.OnEpoch}
	}

	// Lay out the detailed schedule. Every representative window [startB,
	// endB) needs ReplayInstr of detailed cache warmup before it; the
	// first window is instead reached by detailed simulation from
	// instruction 0 — the full warmup plus any intervals before its
	// representative — never by fast-forward: skipped instructions are
	// skipped cache fills, and the occupancy ratio would start the
	// schedule in deficit (Cluster's endpoint-anchor rule makes the first
	// representative interval 0 in the common case, so this usually costs
	// nothing beyond the warmup a full run pays anyway). Overlapping and
	// adjacent coverage merges into segments, each simulated as ONE
	// uninterrupted phase with per-window measurements snapshotted at the
	// boundaries. Merging matters on multi-core runs: a phase boundary is
	// a global barrier, and re-synchronizing the cores mid-measurement
	// perturbs the shared memory channel's arrival order enough to bias
	// contended mixes by over 10%. The only mid-segment barrier ever
	// taken is the warmup→measurement one the full run also has.
	type segWindow struct {
		rep          int
		startB, endB uint64
	}
	type segment struct {
		lo, hi  uint64
		windows []segWindow
	}
	var segs []segment
	for i, rep := range plan.Reps {
		w := segWindow{
			rep:    rep,
			startB: cfg.WarmupInstr + uint64(rep)*L,
		}
		w.endB = w.startB + L
		lo := uint64(0)
		if i > 0 && replay < w.startB {
			lo = w.startB - replay
		}
		if li := len(segs) - 1; li >= 0 && lo <= segs[li].hi {
			segs[li].hi = w.endB
			segs[li].windows = append(segs[li].windows, w)
		} else {
			segs = append(segs, segment{lo: lo, hi: w.endB, windows: []segWindow{w}})
		}
	}

	var detailed uint64
	var epochs []telemetry.Epoch
	wins := make([]winDelta, 0, plan.K)
	anchors := make([]ratioAnchor, 0, plan.K)
	winSeq := 0
	for _, seg := range segs {
		for _, c := range s.cores {
			if c.instr < seg.lo {
				s.emitPhase("fastforward", -1, -1)
				break
			}
		}
		if err := s.fastForward(ctx, seg.lo); err != nil {
			return Result{}, err
		}
		before := s.totalInstr()
		// Reproduce the full run's single warmup→measurement barrier when
		// it falls inside this segment (only the segment that starts at
		// instruction 0 can contain it). This phase has no snapshots, so
		// it runs on the configured engine, parallel included.
		baseline := seg.lo
		if seg.lo < cfg.WarmupInstr && cfg.WarmupInstr < seg.hi {
			s.emitPhase("warmup", -1, -1)
			s.setTargets(cfg.WarmupInstr)
			if err := s.runPhase(ctx); err != nil {
				return Result{}, err
			}
			baseline = cfg.WarmupInstr
		}
		s.beginMeasurement()
		var telBegin telemetry.Sample
		if st != nil {
			telBegin = s.telemetrySample(0)
		}
		// Arm the boundary snapshots and run the rest of the segment as
		// one phase on the sequential reference engine (the snapshot hook
		// lives in its hot loop). A window boundary equal to the baseline
		// position needs no snapshot: beginMeasurement's counter resets
		// are its state.
		bounds := make([]uint64, 0, 2*len(seg.windows))
		for _, w := range seg.windows {
			if w.startB > baseline {
				bounds = append(bounds, w.startB)
			}
			bounds = append(bounds, w.endB)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		bounds = slices.Compact(bounds)
		boundIdx := make(map[uint64]int, len(bounds))
		for j, b := range bounds {
			boundIdx[b] = j
		}
		// Window sequence numbers are global across the run in schedule
		// order, matching SamplingInfo.Windows indexing.
		segSeqs := make([]int, len(seg.windows))
		for i := range segSeqs {
			segSeqs[i] = winSeq
			winSeq++
		}
		// Precompute the OnPhase event each boundary crossing announces:
		// a window start begins a "window" phase, a window end with more
		// of the segment left begins a "replay" gap, and the segment's
		// last boundary begins nothing (the next segment announces its
		// own phases). Window starts win over a coinciding window end.
		phases := make([]PhaseEvent, len(bounds))
		for i, w := range seg.windows {
			if w.startB > baseline {
				phases[boundIdx[w.startB]] = PhaseEvent{Phase: "window", Window: segSeqs[i], Interval: w.rep}
			}
		}
		for _, w := range seg.windows {
			if j := boundIdx[w.endB]; j+1 < len(bounds) && phases[j].Phase == "" {
				phases[j] = PhaseEvent{Phase: "replay", Window: -1, Interval: -1}
			}
		}
		s.snapBounds = bounds
		s.snapCrossed = make([]int, len(bounds))
		s.cuts = make([]segCut, len(bounds))
		s.snapTel = st != nil
		s.boundPhases = phases
		for _, c := range s.cores {
			c.snapAt = bounds[0]
			c.snapIdx = 0
			c.snaps = make([]winSnap, len(bounds))
		}
		// Announce the region the detailed phase starts in: the first
		// window when it begins at the baseline, otherwise the replay
		// leading up to it.
		if first := seg.windows[0]; first.startB > baseline {
			s.emitPhase("replay", -1, -1)
		} else {
			s.emitPhase("window", segSeqs[0], first.rep)
		}
		s.setTargets(seg.hi)
		err := s.run(ctx)
		for _, c := range s.cores {
			c.snapAt = ^uint64(0)
		}
		s.measuring = false
		s.boundPhases = nil
		if err != nil {
			return Result{}, err
		}
		detailed += s.totalInstr() - before
		for j, crossed := range s.snapCrossed {
			if crossed != len(s.cores) {
				return Result{}, fmt.Errorf("sim: %d of %d cores crossed sampled boundary %d", crossed, len(s.cores), j)
			}
		}
		for _, w := range seg.windows {
			cut := s.cuts[boundIdx[w.endB]]
			prevCut := segCut{llc: s.llcSnap, mem: s.memSnap, tel: telBegin}
			startIdx := -1
			if w.startB > baseline {
				startIdx = boundIdx[w.startB]
				prevCut = s.cuts[startIdx]
			}
			wd := winDelta{rep: w.rep, ratio: cut.ratio}
			for _, c := range s.cores {
				prev := winSnap{instr: c.startInst, now: c.startCyc}
				if startIdx >= 0 {
					prev = c.snaps[startIdx]
				}
				cur := c.snaps[boundIdx[w.endB]]
				wd.cores = append(wd.cores, winSnap{
					instr:  cur.instr - prev.instr,
					now:    cur.now - prev.now,
					refs:   cur.refs - prev.refs,
					misses: cur.misses - prev.misses,
					stall:  cur.stall - prev.stall,
					lat:    subHist(cur.lat, prev.lat),
				})
			}
			wd.llc = subCacheStats(cut.llc, prevCut.llc)
			wd.memBytes = cut.mem.TotalBytes() - prevCut.mem.TotalBytes()
			wd.memAccs = (cut.mem.Reads + cut.mem.Writes) - (prevCut.mem.Reads + prevCut.mem.Writes)
			wins = append(wins, wd)
			// The anchor's position is where the cut actually happened on
			// the full run's sample clock: total instructions past warmup,
			// counting fast-forwarded ones (c.instr includes them).
			anchors = append(anchors, ratioAnchor{
				pos:   float64(cut.total) - float64(uint64(len(s.cores))*cfg.WarmupInstr),
				ratio: cut.ratio,
			})
			if st != nil {
				epochs = append(epochs, st.record(len(epochs), prevCut.tel, cut.tel, cut.ratio))
			}
		}
	}

	f := float64(cfg.MeasureInstr) / (float64(n) * float64(L))
	res := s.extrapolate(wins, interpCoeffs(plan.Reps, n), f)
	res.CompRatio = sampledCompRatio(anchors, cfg.SampleEvery, uint64(len(s.cores))*cfg.MeasureInstr)

	info := SamplingInfo{
		IntervalInstr:   L,
		Intervals:       n,
		Clusters:        plan.K,
		KMeansIters:     plan.Iters,
		Converged:       plan.Converged,
		DetailedInstr:   detailed,
		EquivalentInstr: uint64(len(s.cores)) * (cfg.WarmupInstr + cfg.MeasureInstr),
		ProfiledInstr:   prof.Instr,
		ErrorBars:       plan.EstimateErrors(prof.Signatures),
	}
	if detailed > 0 {
		info.SpeedupX = float64(info.EquivalentInstr) / float64(detailed)
	}
	for wi, rep := range plan.Reps {
		w := wins[wi] // wins is flattened in plan.Reps order
		var ipcs []float64
		for _, c := range w.cores {
			var ipc float64
			if c.now > 0 {
				ipc = float64(c.instr) / float64(c.now)
			}
			ipcs = append(ipcs, ipc)
		}
		info.Windows = append(info.Windows, SamplingWindow{
			Interval:   rep,
			Population: plan.Pops[wi],
			Weight:     plan.Weights[wi],
			IPC:        stats.GeoMean(ipcs),
			MissRate:   1 - w.llc.HitRate(),
			CompRatio:  w.ratio,
		})
	}
	res.Sampling = &info
	if st != nil {
		res.Telemetry = &telemetry.Series{Scheme: st.scheme, Every: st.every, Epochs: epochs}
	}
	if s.OnProgress != nil {
		s.OnProgress(s.totalTarget(), s.totalTarget())
	}
	return res, nil
}

// fastForward functionally advances every core to the absolute per-core
// instruction target: the trace generator and the backing-store value
// model run (so later windows see the right addresses and values), but
// no cache, timing, or bandwidth state is touched. Stores are applied
// write-through so the value model's per-store mutation stream stays
// aligned with the access stream.
func (s *System) fastForward(ctx context.Context, target uint64) error {
	done := ctx.Done()
	steps := 0
	for _, c := range s.cores {
		for c.instr < target {
			a := c.gen.Next()
			c.now += uint64(a.NonMem) + 1
			c.instr += a.Instructions()
			if a.Kind == trace.Store {
				line := c.memv.ReadLine(a.Addr)
				c.memv.ApplyStore(line, a.Addr)
				c.memv.WriteLine(a.Addr, line)
			}
			if steps++; steps >= checkEvery {
				steps = 0
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
	}
	return nil
}

// setTargets aims every core at the same absolute per-core instruction
// count. Cores already past it (they may overshoot a phase boundary by
// one access) simply skip the phase.
func (s *System) setTargets(target uint64) {
	for _, c := range s.cores {
		c.target = target
	}
}

// totalInstr sums the cores' instruction counters.
func (s *System) totalInstr() uint64 {
	var t uint64
	for _, c := range s.cores {
		t += c.instr
	}
	return t
}

// winSnap is a snapshot of one core's measurement counters, taken as the
// core crosses a window boundary inside a sampled group phase. The same
// shape doubles as a per-window delta between two snapshots.
type winSnap struct {
	instr, now, refs, misses, stall uint64
	lat                             *stats.Histogram
}

// segCut is a consistent global snapshot taken the moment the LAST core
// crosses a window boundary: consecutive cuts' deltas attribute the
// shared counters (LLC, memory controller) to windows, and telescope
// exactly to the segment phase's totals.
type segCut struct {
	llc   cache.Stats
	mem   mem.Stats
	ratio float64
	// total is totalInstr() at the cut instant. On heterogeneous mixes
	// the leading cores are far past the boundary the laggard just
	// crossed, so this — not cores×boundary — is the cut's position on
	// the full run's total-instruction sample clock.
	total uint64
	tel   telemetry.Sample
}

// winDelta is one representative window's exact measurements, cut out of
// its segment phase: per-core counter deltas between boundary snapshots,
// shared-counter deltas between consistent cuts, and the occupancy ratio
// at the window's end.
type winDelta struct {
	rep      int
	cores    []winSnap
	llc      cache.Stats
	memBytes uint64
	memAccs  uint64
	ratio    float64
}

// windowSnap records core c crossing its next window boundary; the
// sequential run loop calls it whenever c.instr >= c.snapAt. When the
// last core crosses a boundary it also takes that boundary's segCut.
// Snapshot storage is preallocated per segment and filled by index —
// nothing here grows per access.
func (s *System) windowSnap(c *coreState) {
	for c.snapIdx < len(s.snapBounds) && c.instr >= c.snapAt {
		j := c.snapIdx
		c.snaps[j] = winSnap{
			instr:  c.instr,
			now:    c.now,
			refs:   c.refs,
			misses: c.l1Misses,
			stall:  c.stall,
			lat:    cloneHist(c.missLat),
		}
		c.snapIdx++
		if j+1 < len(s.snapBounds) {
			c.snapAt = s.snapBounds[j+1]
		} else {
			c.snapAt = ^uint64(0)
		}
		s.snapCrossed[j]++
		if s.snapCrossed[j] == len(s.cores) {
			s.cuts[j] = segCut{
				llc:   *s.llc.Stats(),
				mem:   *s.memctl.Stats(),
				ratio: s.llc.Ratio(),
				total: s.totalInstr(),
			}
			if s.snapTel {
				s.cuts[j].tel = s.telemetrySample(0)
			}
			// The boundary is globally crossed: announce the region that
			// begins here (a window start or a replay gap), positioned at
			// the cut's consistent instruction count.
			if s.OnPhase != nil && j < len(s.boundPhases) && s.boundPhases[j].Phase != "" {
				ev := s.boundPhases[j]
				ev.Instr = s.cuts[j].total
				s.OnPhase(ev)
			}
		}
	}
}

// cloneHist copies a histogram's mutable state (bounds are shared).
func cloneHist(h *stats.Histogram) *stats.Histogram {
	return &stats.Histogram{
		Bounds: h.Bounds,
		Counts: append([]uint64(nil), h.Counts...),
		Sums:   append([]float64(nil), h.Sums...),
		N:      h.N,
		Sum:    h.Sum,
	}
}

// subHist returns cur - prev bucketwise; a nil prev means "the window
// starts at the group's beginMeasurement reset", i.e. the zero histogram.
func subHist(cur, prev *stats.Histogram) *stats.Histogram {
	d := cloneHist(cur)
	if prev == nil {
		return d
	}
	for b := range d.Counts {
		d.Counts[b] -= prev.Counts[b]
		d.Sums[b] -= prev.Sums[b]
	}
	d.N -= prev.N
	d.Sum -= prev.Sum
	return d
}

// subCacheStats returns the counter delta a - b.
func subCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Reads:        a.Reads - b.Reads,
		Hits:         a.Hits - b.Hits,
		Misses:       a.Misses - b.Misses,
		Fills:        a.Fills - b.Fills,
		WriteBacks:   a.WriteBacks - b.WriteBacks,
		MemWBs:       a.MemWBs - b.MemWBs,
		ExtraCycles:  a.ExtraCycles - b.ExtraCycles,
		Compressions: a.Compressions - b.Compressions,
		Decompressed: a.Decompressed - b.Decompressed,
	}
}

// interpCoeffs returns per-window coefficients that reconstruct the sum
// over all n intervals of a position-interpolated per-interval estimate:
// a simulated interval contributes its own window (coefficient 1); a
// skipped interval contributes a linear blend of its nearest simulated
// neighbors (clamped to the nearest window past the ends). At the tiny
// budgets the golden suite pins, every counter trends with position (the
// cache is still warming), so neighbor interpolation beats substituting
// a cluster representative from elsewhere in the run — clustering's job
// is to SPEND the detailed budget on distinct behaviors, interpolation's
// is to fill the gaps. Coefficients sum to n.
func interpCoeffs(reps []int, n int) []float64 {
	coef := make([]float64, len(reps))
	for w := range coef {
		coef[w] = 1
	}
	for i := 0; i < n; i++ {
		hi := sort.SearchInts(reps, i)
		if hi < len(reps) && reps[hi] == i {
			continue // simulated: counted by its own coefficient
		}
		lo := hi - 1
		switch {
		case lo < 0:
			coef[0]++
		case hi >= len(reps):
			coef[len(reps)-1]++
		default:
			t := float64(i-reps[lo]) / float64(reps[hi]-reps[lo])
			coef[lo] += 1 - t
			coef[hi] += t
		}
	}
	return coef
}

// extrapolate combines the representative windows' deltas into the
// full-window estimate: every additive counter is summed with the
// interpCoeffs window coefficients (then scaled by f, the truncation-
// remainder correction), ratios are recomputed from the extrapolated
// counters, and the per-core latency histograms merge with the same
// weights, so derived metrics (CGMT throughput, AvgGap) come out of the
// identical formulas collect() uses on full runs.
func (s *System) extrapolate(wins []winDelta, coef []float64, f float64) Result {
	res := Result{Scheme: s.cfg.Scheme}

	var ipcs, tputs []float64
	var totalInstrF float64
	for i := range s.cores {
		var instrF, cycF, refsF, missF, stallF float64
		h := stats.NewHistogram(missLatBounds)
		countsF := make([]float64, len(h.Counts))
		for w := range wins {
			p := coef[w]
			c := wins[w].cores[i]
			instrF += p * float64(c.instr)
			cycF += p * float64(c.now)
			refsF += p * float64(c.refs)
			missF += p * float64(c.misses)
			stallF += p * float64(c.stall)
			for b := range countsF {
				countsF[b] += p * float64(c.lat.Counts[b])
				h.Sums[b] += p * c.lat.Sums[b] * f
			}
		}
		instrF *= f
		cycF *= f
		refsF *= f
		missF *= f
		stallF *= f
		for b := range countsF {
			h.Counts[b] = uint64(math.Round(countsF[b] * f))
			h.N += h.Counts[b]
			h.Sum += h.Sums[b]
		}
		cr := CoreResult{
			Instructions:   uint64(math.Round(instrF)),
			Cycles:         uint64(math.Round(cycF)),
			Refs:           uint64(math.Round(refsF)),
			L1Misses:       uint64(math.Round(missF)),
			StallCycles:    uint64(math.Round(stallF)),
			MissLatency:    h,
			AvgMissLatency: h.Mean(),
		}
		if cycF > 0 {
			cr.IPC = instrF / cycF
		}
		compute := cycF - stallF
		if missF > 0 {
			cr.AvgGap = compute / missF
		}
		hidden := float64(s.cfg.Threads-1) * cr.AvgGap
		var residual float64
		for b, cnt := range h.Counts {
			if cnt == 0 {
				continue
			}
			if excess := h.Sums[b] - hidden*float64(cnt); excess > 0 {
				residual += excess
			}
		}
		if tcyc := compute + residual; tcyc > 0 {
			cr.ThroughputIPC = instrF / tcyc
		}
		res.Cores = append(res.Cores, cr)
		totalInstrF += instrF
		ipcs = append(ipcs, cr.IPC)
		tputs = append(tputs, cr.ThroughputIPC)
		if cr.Cycles > res.CompletionCycles {
			res.CompletionCycles = cr.Cycles
		}
	}
	res.IPC = stats.GeoMean(ipcs)
	res.Throughput = stats.GeoMean(tputs)

	// CompRatio is set by runSampled via position interpolation (see
	// sampledCompRatio): occupancy ratio is global cache state that trends
	// with absolute position, not per-interval behavior, so population
	// weighting is the wrong estimator for it.

	var memF, dramF float64
	for w := range wins {
		memF += coef[w] * float64(wins[w].memBytes) * f
		dramF += coef[w] * float64(wins[w].memAccs) * f
	}
	res.MemBytes = uint64(math.Round(memF))
	if totalInstrF > 0 {
		res.GBPerBillionInstr = memF / totalInstrF
	}

	sum := func(get func(cache.Stats) uint64) uint64 {
		var v float64
		for w := range wins {
			v += coef[w] * float64(get(wins[w].llc)) * f
		}
		return uint64(math.Round(v))
	}
	res.LLCStats = cache.Stats{
		Reads:        sum(func(st cache.Stats) uint64 { return st.Reads }),
		Hits:         sum(func(st cache.Stats) uint64 { return st.Hits }),
		Misses:       sum(func(st cache.Stats) uint64 { return st.Misses }),
		Fills:        sum(func(st cache.Stats) uint64 { return st.Fills }),
		WriteBacks:   sum(func(st cache.Stats) uint64 { return st.WriteBacks }),
		MemWBs:       sum(func(st cache.Stats) uint64 { return st.MemWBs }),
		ExtraCycles:  sum(func(st cache.Stats) uint64 { return st.ExtraCycles }),
		Compressions: sum(func(st cache.Stats) uint64 { return st.Compressions }),
		Decompressed: sum(func(st cache.Stats) uint64 { return st.Decompressed }),
	}

	// Energy is linear in events and cycles, so applying the model once
	// to the extrapolated events equals the weighted sum of per-window
	// breakdowns.
	res.Energy = s.energyFor(res, uint64(math.Round(dramF)))
	return res
}

// ratioAnchor pins the LLC occupancy ratio observed at one window's end,
// positioned on the full run's measured-instruction clock (total
// measured instructions across cores at that point of the run).
type ratioAnchor struct{ pos, ratio float64 }

// sampledCompRatio reproduces the full run's CompRatio estimator from
// the window-end anchors. The full run means the occupancy ratio sampled
// every SampleEvery measured instructions plus one forced end-of-run
// sample; occupancy is global cache state that trends with absolute
// position (it climbs until the cache reaches steady state), so a
// population-weighted mean of per-window ratios is biased whenever the
// representatives sit at unrepresentative positions. Instead we evaluate
// the ratio trajectory — piecewise-linear between the window-end
// anchors, clamped flat outside them — at exactly the positions the full
// sampler would have sampled, and take the same mean.
func sampledCompRatio(anchors []ratioAnchor, sampleEvery, totalMeasure uint64) float64 {
	if len(anchors) == 0 || sampleEvery == 0 {
		return 0
	}
	at := func(p float64) float64 {
		if p <= anchors[0].pos {
			return anchors[0].ratio
		}
		for i := 1; i < len(anchors); i++ {
			if p <= anchors[i].pos {
				a, b := anchors[i-1], anchors[i]
				t := (p - a.pos) / (b.pos - a.pos)
				return a.ratio + t*(b.ratio-a.ratio)
			}
		}
		return anchors[len(anchors)-1].ratio
	}
	var sum float64
	n := 0
	for p := sampleEvery; p <= totalMeasure; p += sampleEvery {
		sum += at(float64(p))
		n++
	}
	sum += at(float64(totalMeasure)) // the full run's forced end sample
	n++
	return sum / float64(n)
}

// sampledTelemetry synthesizes the telemetry series of a sampled run:
// one epoch per measured representative window (deltas across that
// window only — fast-forwarded gaps and warmup replays never appear).
// The epoch grid is therefore the window schedule, not Every; Every is
// kept on the Series for self-description.
type sampledTelemetry struct {
	scheme   string
	every    uint64
	onEpoch  func(telemetry.Epoch)
	endInstr uint64
}

// record builds one window epoch from its boundary samples, mirroring
// the Recorder's delta/derivation arithmetic, and returns it (the caller
// owns the epoch slice). ratio is the occupancy at the window-end cut;
// it stands in for the full run's periodic in-window samples, so
// RatioSamples is 1.
func (st *sampledTelemetry) record(seq int, begin, end telemetry.Sample, ratio float64) telemetry.Epoch {
	e := telemetry.Epoch{
		Seq:           seq,
		LLCReads:      end.LLC.Reads - begin.LLC.Reads,
		LLCHits:       end.LLC.Hits - begin.LLC.Hits,
		LLCMisses:     end.LLC.Misses - begin.LLC.Misses,
		Fills:         end.LLC.Fills - begin.LLC.Fills,
		WriteBacks:    end.LLC.WriteBacks - begin.LLC.WriteBacks,
		MemWBs:        end.LLC.MemWBs - begin.LLC.MemWBs,
		MemReadBytes:  end.Mem.ReadBytes - begin.Mem.ReadBytes,
		MemWriteBytes: end.Mem.WriteBytes - begin.Mem.WriteBytes,
		BusyCycles:    end.Mem.BusyCycles - begin.Mem.BusyCycles,
		Probes:        end.Probes,
		CompRatio:     ratio,
		RatioSamples:  1,
	}
	var maxNow, maxPrev uint64
	for i := range end.Cores {
		ce := telemetry.CoreEpoch{
			Instr:  end.Cores[i].Instr - begin.Cores[i].Instr,
			Cycles: end.Cores[i].Cycles - begin.Cores[i].Cycles,
			Stall:  end.Cores[i].Stall - begin.Cores[i].Stall,
		}
		if ce.Cycles > 0 {
			ce.IPC = float64(ce.Instr) / float64(ce.Cycles)
			ce.StallFrac = float64(ce.Stall) / float64(ce.Cycles)
		}
		e.Cores = append(e.Cores, ce)
		e.Instr += ce.Instr
		if end.Cores[i].Cycles > maxNow {
			maxNow = end.Cores[i].Cycles
		}
		if begin.Cores[i].Cycles > maxPrev {
			maxPrev = begin.Cores[i].Cycles
		}
	}
	e.Cycles = maxNow - maxPrev
	if e.LLCReads > 0 {
		e.HitRate = float64(e.LLCHits) / float64(e.LLCReads)
	}
	if e.Cycles > 0 {
		e.BWUtil = float64(e.BusyCycles) / float64(e.Cycles)
	}
	st.endInstr += e.Instr
	e.EndInstr = st.endInstr
	if st.onEpoch != nil {
		st.onEpoch(e)
	}
	return e
}
