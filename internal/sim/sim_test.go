package sim

import (
	"testing"

	"morc/internal/trace"
)

// skipIfShort keeps multi-hundred-thousand-instruction simulations out
// of the -short lane (see README "Testing").
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy simulation; run without -short")
	}
}

// quickCfg shrinks the run for fast tests.
func quickCfg(s Scheme) Config {
	cfg := DefaultConfig()
	cfg.Scheme = s
	cfg.WarmupInstr = 200_000
	cfg.MeasureInstr = 300_000
	cfg.SampleEvery = 50_000
	return cfg
}

func TestRunSingleAllSchemes(t *testing.T) {
	skipIfShort(t)
	for _, s := range []Scheme{Uncompressed, Uncompressed8x, Adaptive, Decoupled, SC2, MORC, MORCMerged} {
		res := RunSingle("gcc", quickCfg(s))
		if res.IPC <= 0 || res.IPC > 1 {
			t.Fatalf("%v: IPC %g out of (0,1]", s, res.IPC)
		}
		if res.Throughput < res.IPC {
			t.Fatalf("%v: throughput %g below IPC %g", s, res.Throughput, res.IPC)
		}
		if res.Cores[0].Instructions < quickCfg(s).MeasureInstr {
			t.Fatalf("%v: ran %d instructions", s, res.Cores[0].Instructions)
		}
		if res.CompletionCycles == 0 {
			t.Fatalf("%v: zero cycles", s)
		}
		if res.Energy.Total() <= 0 {
			t.Fatalf("%v: no energy", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	skipIfShort(t)
	a := RunSingle("astar", quickCfg(MORC))
	b := RunSingle("astar", quickCfg(MORC))
	if a.IPC != b.IPC || a.MemBytes != b.MemBytes || a.CompRatio != b.CompRatio {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestMORCCompressesBetterThanBaselines(t *testing.T) {
	skipIfShort(t)
	// The headline result on a compressible workload.
	morc := RunSingle("gcc", quickCfg(MORC))
	adaptive := RunSingle("gcc", quickCfg(Adaptive))
	unc := RunSingle("gcc", quickCfg(Uncompressed))
	if morc.CompRatio <= adaptive.CompRatio {
		t.Fatalf("MORC ratio %.2f not above Adaptive %.2f", morc.CompRatio, adaptive.CompRatio)
	}
	if morc.CompRatio < 2 {
		t.Fatalf("MORC ratio %.2f on gcc", morc.CompRatio)
	}
	if unc.CompRatio > 1.01 {
		t.Fatalf("uncompressed ratio %.2f", unc.CompRatio)
	}
}

func TestCompressionSavesBandwidth(t *testing.T) {
	morc := RunSingle("gcc", quickCfg(MORC))
	unc := RunSingle("gcc", quickCfg(Uncompressed))
	if morc.MemBytes >= unc.MemBytes {
		t.Fatalf("MORC traffic %d not below uncompressed %d", morc.MemBytes, unc.MemBytes)
	}
}

func TestBandwidthBoundWorkloadGainsIPC(t *testing.T) {
	// gcc at 100MB/s is bandwidth-bound; the bandwidth MORC saves must
	// turn into IPC.
	morc := RunSingle("gcc", quickCfg(MORC))
	unc := RunSingle("gcc", quickCfg(Uncompressed))
	if morc.IPC <= unc.IPC {
		t.Fatalf("MORC IPC %.4f not above uncompressed %.4f", morc.IPC, unc.IPC)
	}
}

func TestAbundantBandwidthRemovesAdvantage(t *testing.T) {
	// At 1600MB/s the system is not bandwidth-bound; MORC's long
	// decompression latency should hurt single-stream IPC (Figure 10a).
	cfg := quickCfg(MORC)
	cfg.BWPerCore = 1600e6
	morc := RunSingle("gcc", cfg)
	cfgU := quickCfg(Uncompressed)
	cfgU.BWPerCore = 1600e6
	unc := RunSingle("gcc", cfgU)
	if morc.IPC >= unc.IPC {
		t.Fatalf("at 1600MB/s MORC IPC %.4f >= uncompressed %.4f", morc.IPC, unc.IPC)
	}
}

func TestComputeBoundWorkloadInsensitive(t *testing.T) {
	// povray mostly hits in L1/LLC: schemes should be within a few
	// percent of each other.
	morc := RunSingle("povray", quickCfg(MORC))
	unc := RunSingle("povray", quickCfg(Uncompressed))
	rel := morc.IPC / unc.IPC
	if rel < 0.8 || rel > 1.3 {
		t.Fatalf("povray MORC/uncompressed IPC ratio %.2f, want ~1", rel)
	}
}

func TestThroughputModelHidesLatency(t *testing.T) {
	skipIfShort(t)
	// CGMT throughput must exceed single-thread IPC when stalls exist.
	res := RunSingle("mcf", quickCfg(MORC))
	if res.Cores[0].StallCycles == 0 {
		t.Fatal("mcf produced no stalls")
	}
	if res.Throughput <= res.IPC {
		t.Fatalf("throughput %.4f not above IPC %.4f", res.Throughput, res.IPC)
	}
}

func TestMultiProgramMixRuns(t *testing.T) {
	skipIfShort(t)
	cfg := quickCfg(MORC)
	cfg.WarmupInstr = 20_000
	cfg.MeasureInstr = 40_000
	res := RunMix("M0", cfg)
	if len(res.Cores) != 16 {
		t.Fatalf("%d cores", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.Instructions < cfg.MeasureInstr {
			t.Fatalf("core %d ran %d instructions", i, c.Instructions)
		}
	}
	// The quick window leaves the 2MB shared LLC partly cold; just check
	// compression is doing real work relative to occupancy.
	if res.CompRatio <= 0.3 {
		t.Fatalf("mix compression ratio %.2f", res.CompRatio)
	}
}

func TestSharedLLCSeesAllCores(t *testing.T) {
	cfg := quickCfg(Uncompressed)
	cfg.WarmupInstr = 10_000
	cfg.MeasureInstr = 20_000
	res := RunMix("S2", cfg) // 16 x gcc
	if res.LLCStats.Reads == 0 {
		t.Fatal("no LLC traffic")
	}
	// Every core must have run its window and contributed LLC traffic;
	// per-core IPC stays physical.
	for i, c := range res.Cores {
		if c.Instructions < cfg.MeasureInstr {
			t.Fatalf("core %d ran %d instructions", i, c.Instructions)
		}
		if c.IPC <= 0 || c.IPC > 1 {
			t.Fatalf("core %d IPC %g", i, c.IPC)
		}
	}
}

func TestInclusiveModeFillsOnStoreMiss(t *testing.T) {
	skipIfShort(t)
	cfg := quickCfg(MORC)
	cfg.Inclusive = true
	inc := RunSingle("lbm", cfg)
	cfg.Inclusive = false
	non := RunSingle("lbm", cfg)
	// Inclusive inserts fetched lines on store misses too, so it must
	// perform at least as many fills.
	if inc.LLCStats.Fills <= non.LLCStats.Fills {
		t.Fatalf("inclusive fills %d <= non-inclusive %d", inc.LLCStats.Fills, non.LLCStats.Fills)
	}
}

func TestEnergyDRAMTracksTraffic(t *testing.T) {
	skipIfShort(t)
	morc := RunSingle("gcc", quickCfg(MORC))
	unc := RunSingle("gcc", quickCfg(Uncompressed))
	if morc.Energy.DRAMJ >= unc.Energy.DRAMJ {
		t.Fatalf("MORC DRAM energy %g not below uncompressed %g", morc.Energy.DRAMJ, unc.Energy.DRAMJ)
	}
	if morc.Energy.DecompressJ <= unc.Energy.DecompressJ {
		t.Fatal("MORC charged no decompression energy")
	}
}

func TestBytesConservation(t *testing.T) {
	skipIfShort(t)
	// Every off-chip byte is a 64B line transfer: reads = LLC misses that
	// went to memory, writes = LLC write-backs to memory.
	res := RunSingle("omnetpp", quickCfg(MORC))
	if res.MemBytes%64 != 0 {
		t.Fatalf("off-chip bytes %d not line-granular", res.MemBytes)
	}
	if res.MemBytes == 0 {
		t.Fatal("no off-chip traffic for omnetpp")
	}
}

func TestMixedWorkloadProfilesResolve(t *testing.T) {
	for _, mix := range trace.MixNames() {
		progs := trace.MultiProgramMixes()[mix]
		if len(trace.MixPrograms(progs)) != 16 {
			t.Fatalf("%s: bad program list", mix)
		}
	}
}
