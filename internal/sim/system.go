package sim

import (
	"context"
	"errors"
	"fmt"

	"morc/internal/cache"
	"morc/internal/compress/cpack"
	"morc/internal/mem"
	"morc/internal/stats"
	"morc/internal/telemetry"
	"morc/internal/trace"
)

// missLatBounds are the per-core miss-latency histogram buckets in core
// cycles: LLC hits land in the first few, DRAM accesses around 100-200,
// and bandwidth-wall queueing pushes into the thousands.
var missLatBounds = []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// coreState is one in-order core with its private L1 and workload.
type coreState struct {
	id   int
	gen  trace.Generator
	memv *trace.Memory
	l1   *cache.SetAssoc

	now    uint64 // local cycle count
	instr  uint64
	target uint64 // run until instr reaches this

	// measurement-window counters
	refs     uint64
	l1Misses uint64
	stall    uint64 // cycles blocked on L1 misses
	// missLat is the online per-miss service-latency distribution
	// (count, sum, and per-bucket sums), replacing the old unbounded
	// one-entry-per-miss slice: the CGMT residual is computed piecewise
	// from the buckets and the histogram itself is the per-core Figure 14
	// metric on CoreResult.
	missLat   *stats.Histogram
	startCyc  uint64
	startInst uint64

	// Window-boundary snapshots for sampled segment phases (sampling.go):
	// when this core's instr crosses snapAt, run records a winSnap of the
	// core-private counters into snaps[snapIdx] (preallocated per
	// segment) and advances snapAt to the next boundary in
	// System.snapBounds. Disarmed (snapAt == ^uint64(0)) everywhere
	// outside a sampled measurement phase, so full runs pay one
	// always-false comparison per access.
	snapAt  uint64
	snapIdx int
	snaps   []winSnap
}

// System wires cores, the shared LLC, and the memory channel together.
type System struct {
	cfg    Config
	cores  []*coreState
	llc    cache.LLC
	memctl *mem.Controller
	// programs are the per-core workload profiles, retained so sampled
	// runs can hand them to the profiling pass (morc/internal/sample).
	programs []trace.Profile

	ratio     *stats.Sampler
	sampleAt  uint64
	llcSnap   cache.Stats
	memSnap   mem.Stats
	measuring bool
	tel       *telemetry.Recorder

	// Sampled-run segment state (sampling.go): snapBounds are the
	// ascending per-core instruction boundaries of the current segment
	// phase, snapCrossed[j] counts cores that have crossed boundary j,
	// and cuts[j] is the consistent global snapshot taken the moment the
	// last core crosses boundary j. boundPhases[j], when its Phase is
	// non-empty, is the OnPhase event announcing the region that begins
	// at boundary j; windowSnap emits it at the last-core crossing.
	snapBounds  []uint64
	snapCrossed []int
	cuts        []segCut
	snapTel     bool
	boundPhases []PhaseEvent

	// OnProgress, when set, is called at most every checkEvery accesses
	// with the instructions retired so far (clamped to the total) and the
	// total target across warmup and measurement (all cores), and exactly
	// once with (total, total) when the run completes. Used by morcd to
	// report job progress; must be cheap and must not call back into the
	// System.
	OnProgress func(done, total uint64)

	// OnEpoch, when set before RunCtx, receives each completed telemetry
	// epoch synchronously from the simulation loop (Config.Telemetry must
	// be enabled). morcd uses it to stream epochs to SSE subscribers; it
	// must be cheap and must not call back into the System.
	OnEpoch func(telemetry.Epoch)

	// OnPhase, when set before RunCtx, receives each simulation phase
	// transition synchronously: every event marks the BEGINNING of a
	// phase on the instruction clock and implicitly ends the previous
	// one (the run's end ends the last). Full runs announce "warmup"
	// then "measure"; sampled runs announce "fastforward", "warmup",
	// "replay", and one "window" per replayed representative window.
	// Events carry instruction counts only — no wall-clock enters the
	// deterministic core; morcd stamps times at the service layer to
	// build sim-phase trace spans. Same contract as the other hooks:
	// cheap, and no calling back into the System.
	OnPhase func(PhaseEvent)
}

// PhaseEvent is one OnPhase notification. For "window" phases Window is
// the window's 0-based sequence number across the whole run (schedule
// order) and Interval its representative interval index; both are -1
// otherwise. Instr is total instructions retired across cores when the
// phase begins. Identical same-seed runs produce identical event
// sequences.
type PhaseEvent struct {
	Phase    string
	Window   int
	Interval int
	Instr    uint64
}

// emitPhase announces a phase beginning at the current instruction
// position. Only called at phase boundaries, never on the per-access
// path.
func (s *System) emitPhase(phase string, window, interval int) {
	if s.OnPhase == nil {
		return
	}
	s.OnPhase(PhaseEvent{Phase: phase, Window: window, Interval: interval, Instr: s.totalInstr()})
}

// checkEvery is how many accesses pass between context-cancellation and
// progress checks in run: frequent enough to cancel a job in well under a
// second, rare enough to be invisible in the simulation hot loop.
const checkEvery = 4096

// New builds a system running the given per-core workloads (len must
// equal cfg.Cores).
func New(cfg Config, programs []trace.Profile) *System {
	if len(programs) != cfg.Cores {
		panic(fmt.Sprintf("sim: %d programs for %d cores", len(programs), cfg.Cores))
	}
	s := &System{
		cfg: cfg,
		llc: cfg.newLLC(),
		memctl: mem.NewController(mem.Config{
			ClockHz:              cfg.ClockHz,
			BandwidthBytesPerSec: cfg.BWPerCore * float64(cfg.Cores),
			AccessLatency:        cfg.MemLatency,
		}),
		ratio:    stats.NewSampler(cfg.SampleEvery),
		programs: append([]trace.Profile(nil), programs...),
	}
	for i, p := range programs {
		s.cores = append(s.cores, &coreState{
			id:     i,
			gen:    trace.NewSynthGen(p),
			memv:   trace.NewMemory(p),
			l1:     cache.NewSetAssoc(cfg.L1Bytes, cfg.L1Ways, cache.LRU),
			snapAt: ^uint64(0),
		})
	}
	return s
}

// LLC exposes the cache organization for experiment-specific probes
// (symbol statistics, latency histograms, invalid fractions).
func (s *System) LLC() cache.LLC { return s.llc }

// Memory exposes the memory controller.
func (s *System) Memory() *mem.Controller { return s.memctl }

// step executes one access on core c.
func (s *System) step(c *coreState) {
	if a, miss := s.stepAccess(c); miss {
		s.serviceMiss(c, a)
	}
}

// stepAccess executes the core-private half of one access: the trace
// generator, the per-core clocks, and the private L1 (including store-hit
// mutation). It touches no cross-core state, which is what lets the
// parallel engine run it on a worker without coordination. On an L1 miss
// it returns the access for serviceMiss to complete; the core is then
// mid-access (clocks advanced, L1 untouched) until serviceMiss runs.
func (s *System) stepAccess(c *coreState) (a trace.Access, miss bool) {
	a = c.gen.Next()
	c.now += uint64(a.NonMem) + 1
	c.instr += a.Instructions()
	c.refs++

	if a.Kind == trace.Load {
		if c.l1.Read(a.Addr).Hit {
			return a, false
		}
		return a, true
	}
	// Store: write-allocate into the L1.
	if res := c.l1.Read(a.Addr); res.Hit {
		mutated := cache.CloneLine(res.Data)
		c.memv.ApplyStore(mutated, a.Addr)
		c.l1.Update(a.Addr, mutated, true)
		return a, false
	}
	return a, true
}

// serviceMiss completes an L1 miss begun by stepAccess: the LLC lookup,
// memory access, fills, and the core's stall accounting. Everything that
// reads or writes cross-core state (the shared LLC, the memory
// controller's bandwidth queues) happens here, so the parallel engine
// applies these in the sequential engine's canonical order.
func (s *System) serviceMiss(c *coreState, a trace.Access) {
	if a.Kind == trace.Load {
		data, lat := s.llcAccess(c, a.Addr, false)
		s.l1Insert(c, a.Addr, data, false)
		s.block(c, lat)
		return
	}
	data, lat := s.llcAccess(c, a.Addr, true)
	mutated := cache.CloneLine(data)
	c.memv.ApplyStore(mutated, a.Addr)
	s.l1Insert(c, a.Addr, mutated, true)
	s.block(c, lat)
}

// block charges an L1-miss service latency to the core.
func (s *System) block(c *coreState, lat uint64) {
	c.now += lat
	c.stall += lat
	c.l1Misses++
	if s.measuring {
		c.missLat.Add(float64(lat))
	}
}

// llcAccess services an L1 miss: LLC lookup, then memory on an LLC miss.
// Non-inclusive LLCs do not allocate on store misses (§5.4.2); the line
// arrives later as an L1 write-back.
func (s *System) llcAccess(c *coreState, addr uint64, isStore bool) (data []byte, lat uint64) {
	res := s.llc.Read(addr)
	lat = uint64(s.cfg.LLCLatency) + uint64(res.ExtraCycles)
	if res.Hit {
		return res.Data, lat
	}
	data = c.memv.ReadLine(addr)
	done := s.memctl.Read(c.now+lat, addr, s.transferBytes(data))
	lat = done - c.now
	if !isStore || s.cfg.Inclusive {
		s.handleWBs(c, s.llc.Fill(addr, data))
	}
	return data, lat
}

// l1Insert fills the private L1, forwarding any dirty victim to the LLC
// as a write-back.
func (s *System) l1Insert(c *coreState, addr uint64, data []byte, dirty bool) {
	wbs := c.l1.Fill(addr, data)
	if dirty {
		c.l1.Update(addr, data, true)
	}
	for _, wb := range wbs {
		s.handleWBs(c, s.llc.WriteBack(wb.Addr, wb.Data))
	}
}

// handleWBs sends LLC-evicted dirty lines to memory: backing-store update
// plus write bandwidth.
func (s *System) handleWBs(c *coreState, wbs []cache.Writeback) {
	for _, wb := range wbs {
		c.memv.WriteLine(wb.Addr, wb.Data)
		s.memctl.Write(c.now, wb.Addr, s.transferBytes(wb.Data))
	}
}

// transferBytes is the channel occupancy of moving one line: 64 bytes,
// or the C-Pack-compressed size under link compression (never more than
// the raw line; expanding lines go uncompressed).
func (s *System) transferBytes(data []byte) int {
	if !s.cfg.LinkCompression {
		return cache.LineSize
	}
	n := (cpack.CompressedBits(data) + 7) / 8
	if n > cache.LineSize {
		n = cache.LineSize
	}
	if n < 1 {
		n = 1
	}
	return n
}

// run advances all cores (oldest first) until each reaches its per-core
// instruction target, or ctx is cancelled (checked every checkEvery
// accesses so the hot loop stays select-free).
func (s *System) run(ctx context.Context) error {
	done := ctx.Done()
	steps := 0
	for {
		var pick *coreState
		for _, c := range s.cores {
			if c.instr >= c.target {
				continue
			}
			if pick == nil || c.now < pick.now {
				pick = c
			}
		}
		if pick == nil {
			return nil
		}
		s.step(pick)
		if pick.instr >= pick.snapAt {
			s.windowSnap(pick)
		}
		if steps++; steps >= checkEvery {
			steps = 0
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			if s.OnProgress != nil {
				var instr uint64
				for _, c := range s.cores {
					instr += c.instr
				}
				total := s.totalTarget()
				s.OnProgress(clampProgress(instr, total), total)
			}
		}
		if s.measuring {
			var total uint64
			for _, c := range s.cores {
				total += c.instr
			}
			meas := total - s.sampleAt
			// Ratio() walks the whole cache; only compute it when the
			// sampler will actually record.
			if s.ratio.Due(meas) {
				r := s.llc.Ratio()
				s.ratio.Tick(meas, r)
				if s.tel != nil {
					s.tel.ObserveRatio(r, s.ratio.Count())
				}
			}
			// The telemetry epoch hook rides the same accounting: one nil
			// check when disabled, one comparison between boundaries.
			if s.tel != nil && s.tel.Due(meas) {
				s.tel.Record(s.telemetrySample(meas))
			}
		}
	}
}

// runPhase advances all cores to their current targets on the configured
// engine: the sequential reference loop for Parallelism ≤ 1, the
// deterministic parallel engine otherwise. Both produce byte-identical
// System state, results, and callback sequences (see DESIGN.md).
func (s *System) runPhase(ctx context.Context) error {
	if s.cfg.Parallelism > 1 {
		return s.runParallel(ctx)
	}
	return s.run(ctx)
}

// totalTarget is the whole run's instruction count across all cores:
// warmup plus measurement, the denominator for progress reporting.
func (s *System) totalTarget() uint64 {
	return uint64(len(s.cores)) * (s.cfg.WarmupInstr + s.cfg.MeasureInstr)
}

// clampProgress bounds a progress numerator to its total: cores may
// overshoot their per-core target by one access's instruction count, and
// progress must never exceed (and later have to back off from) the
// total. Both engines report through this, so their callback sequences
// agree bit for bit.
func clampProgress(instr, total uint64) uint64 {
	if instr > total {
		return total
	}
	return instr
}

// Run executes warmup then the measurement window and returns the result.
func (s *System) Run() Result {
	res, err := s.RunCtx(context.Background())
	if err != nil {
		// Background contexts never cancel; keep the historical
		// infallible signature for the experiment suite.
		panic("sim: Run cancelled: " + err.Error())
	}
	return res
}

// RunCtx is Run under a context: warmup, then the measurement window,
// returning the collected result. If ctx is cancelled mid-run it stops
// within checkEvery accesses and returns ctx.Err() with a zero Result;
// the System's counters stay internally consistent (each core simply
// halts short of its target) but the run cannot be resumed.
func (s *System) RunCtx(ctx context.Context) (Result, error) {
	if s.cfg.Parallelism < 0 {
		return Result{}, fmt.Errorf("sim: negative Parallelism %d", s.cfg.Parallelism)
	}
	if s.cfg.Sampling.Enabled() {
		if err := s.cfg.Sampling.Validate(); err != nil {
			return Result{}, err
		}
		// Fewer than two whole intervals means there is nothing to
		// sample between; fall through to the full-fidelity run
		// (Result.Sampling stays nil). Likewise when clustering turns
		// out degenerate (every interval its own representative).
		if s.cfg.sampledIntervals() >= 2 {
			res, err := s.runSampled(ctx)
			if !errors.Is(err, errSamplingDegenerate) {
				return res, err
			}
		}
	}
	s.emitPhase("warmup", -1, -1)
	for _, c := range s.cores {
		c.target = s.cfg.WarmupInstr
	}
	if err := s.runPhase(ctx); err != nil {
		return Result{}, err
	}
	s.beginMeasurement()
	s.emitPhase("measure", -1, -1)
	for _, c := range s.cores {
		c.target = c.instr + s.cfg.MeasureInstr
	}
	if s.cfg.Telemetry.Enabled() {
		s.tel = telemetry.NewRecorder(s.cfg.Telemetry, s.cfg.Scheme.String(), s.OnEpoch)
		s.tel.Begin(s.telemetrySample(0))
	}
	if err := s.runPhase(ctx); err != nil {
		return Result{}, err
	}
	ratio := s.llc.Ratio()
	s.ratio.ForceSample(ratio)
	if s.tel != nil {
		s.tel.ObserveRatio(ratio, s.ratio.Count())
	}
	res := s.collect()
	if s.OnProgress != nil {
		s.OnProgress(s.totalTarget(), s.totalTarget())
	}
	return res, nil
}

// beginMeasurement snapshots counters so the measurement window reports
// deltas, resets the per-core window counters, and opens the window.
// RunCtx calls it once after warmup; sampled runs call it once per
// representative window.
func (s *System) beginMeasurement() {
	s.llcSnap = *s.llc.Stats()
	s.memSnap = *s.memctl.Stats()
	s.ratio = stats.NewSampler(s.cfg.SampleEvery)
	var sampleBase uint64
	for _, c := range s.cores {
		c.startCyc = c.now
		c.startInst = c.instr
		c.refs = 0
		c.l1Misses = 0
		c.stall = 0
		c.missLat = stats.NewHistogram(missLatBounds)
		sampleBase += c.instr
	}
	s.sampleAt = sampleBase
	s.measuring = true
}

// telemetrySample snapshots every counter the telemetry layer records,
// at measurement-window instruction clock meas. Only called at epoch
// boundaries, so the full-cache Ratio walk and the Probed gauges are off
// the per-access path.
func (s *System) telemetrySample(meas uint64) telemetry.Sample {
	smp := telemetry.Sample{
		Instr: meas,
		LLC:   *s.llc.Stats(),
		Mem:   *s.memctl.Stats(),
		Ratio: s.llc.Ratio(),
	}
	smp.Cores = make([]telemetry.CoreSample, len(s.cores))
	for i, c := range s.cores {
		smp.Cores[i] = telemetry.CoreSample{Instr: c.instr, Cycles: c.now, Stall: c.stall}
	}
	if p, ok := s.llc.(cache.Probed); ok {
		smp.Probes = p.Probes()
	}
	return smp
}
