package sim

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCtxCancelMidMeasurement cancels a run once the measurement
// window has started and checks that it stops promptly, reports
// context.Canceled, and leaves the System's counters internally
// consistent (no core past its target, measurement snapshots taken).
func TestRunCtxCancelMidMeasurement(t *testing.T) {
	skipIfShort(t)
	cfg := quickCfg(MORC)
	cfg.MeasureInstr = 50_000_000 // far more than we will let it run

	s, err := NewSingle("gcc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var cancelled atomic.Bool
	s.OnProgress = func(done, total uint64) {
		if want := uint64(cfg.WarmupInstr + cfg.MeasureInstr); total != want {
			t.Errorf("progress total = %d, want %d", total, want)
		}
		// Cancel once measurement is under way.
		if done > cfg.WarmupInstr+200_000 && !cancelled.Swap(true) {
			cancel()
		}
	}
	defer cancel()

	start := time.Now()
	res, err := s.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if res.Cores != nil || res.CompRatio != 0 {
		t.Errorf("cancelled RunCtx returned non-zero Result: %+v", res)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancellation took %v", d)
	}

	c := s.cores[0]
	if c.instr >= c.target {
		t.Errorf("core ran to completion (instr %d >= target %d) despite cancel", c.instr, c.target)
	}
	if c.instr <= cfg.WarmupInstr {
		t.Errorf("cancel fired before measurement: instr %d <= warmup %d", c.instr, cfg.WarmupInstr)
	}
	if !s.measuring {
		t.Error("system never entered the measurement window")
	}
	if c.startInst < cfg.WarmupInstr {
		t.Errorf("measurement snapshot taken early: startInst %d < warmup %d", c.startInst, cfg.WarmupInstr)
	}
	// The interrupted run must not perturb later runs: a fresh system with
	// the normal budget must match an independent reference exactly.
	fresh := quickCfg(MORC)
	got := RunSingle("gcc", fresh)
	want := RunSingle("gcc", fresh)
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Errorf("post-cancel run diverged from reference:\n%s\n%s", gb, wb)
	}
}

// TestRunCtxCancelledBeforeStart: an already-cancelled context stops the
// run before any work happens.
func TestRunCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSingleCtx(ctx, "gcc", quickCfg(MORC))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestRunCtxMatchesRun: the context plumbing must not change results.
func TestRunCtxMatchesRun(t *testing.T) {
	cfg := quickCfg(SC2)
	got, err := RunSingleCtx(context.Background(), "omnetpp", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := RunSingle("omnetpp", cfg)
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Errorf("RunSingleCtx != RunSingle:\n%s\n%s", gb, wb)
	}
}

func TestRunSingleCtxUnknownWorkload(t *testing.T) {
	if _, err := RunSingleCtx(context.Background(), "no-such-workload", quickCfg(MORC)); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if _, err := RunMixCtx(context.Background(), "no-such-mix", quickCfg(MORC)); err == nil {
		t.Fatal("expected error for unknown mix")
	}
}

func TestParseScheme(t *testing.T) {
	for _, sch := range AllSchemes() {
		got, err := ParseScheme(sch.String())
		if err != nil || got != sch {
			t.Errorf("ParseScheme(%q) = %v, %v", sch.String(), got, err)
		}
		got, err = ParseScheme(lower(sch.String()))
		if err != nil || got != sch {
			t.Errorf("ParseScheme(%q) = %v, %v", lower(sch.String()), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme(bogus) succeeded")
	}
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if 'A' <= b[i] && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

func TestSchemeJSONRoundTrip(t *testing.T) {
	for _, sch := range AllSchemes() {
		b, err := json.Marshal(sch)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+sch.String()+`"` {
			t.Errorf("marshal %v = %s", sch, b)
		}
		var back Scheme
		if err := json.Unmarshal(b, &back); err != nil || back != sch {
			t.Errorf("unmarshal %s = %v, %v", b, back, err)
		}
	}
	var s Scheme
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("unmarshal bogus scheme succeeded")
	}
}
