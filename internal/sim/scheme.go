package sim

import (
	"fmt"
	"strings"
)

// AllSchemes returns every LLC organization the simulator implements, in
// declaration order. Front-ends (morcsim, morcbench, morcd) enumerate and
// parse schemes through this list so it can never drift between them.
func AllSchemes() []Scheme {
	return []Scheme{Uncompressed, Uncompressed8x, Adaptive, Decoupled,
		SC2, MORC, MORCMerged, Skewed}
}

// ParseScheme resolves a scheme name (case-insensitive) to its Scheme.
func ParseScheme(s string) (Scheme, error) {
	for _, sch := range AllSchemes() {
		if strings.EqualFold(sch.String(), s) {
			return sch, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

// MarshalText encodes the scheme as its paper name, so JSON requests and
// results carry "MORC" rather than an opaque integer.
func (s Scheme) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText parses a scheme name (case-insensitive).
func (s *Scheme) UnmarshalText(b []byte) error {
	sch, err := ParseScheme(string(b))
	if err != nil {
		return err
	}
	*s = sch
	return nil
}
