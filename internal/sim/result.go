package sim

import (
	"morc/internal/cache"
	"morc/internal/energy"
	"morc/internal/stats"
	"morc/internal/telemetry"
)

// CoreResult summarizes one core's measurement window.
type CoreResult struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
	Refs         uint64 // memory references (L1 accesses)
	L1Misses     uint64
	StallCycles  uint64
	// AvgGap is the average compute cycles between consecutive L1 misses
	// — the latency tolerance the CGMT model can exploit (§4).
	AvgGap float64
	// ThroughputIPC is the estimated multithreaded (CGMT) throughput:
	// instructions over compute cycles plus only the un-hideable stalls.
	ThroughputIPC float64
	// MissLatency is the distribution of this core's L1-miss service
	// latencies in core cycles — the system-level analogue of Figure 14's
	// per-hit decompression-latency distribution. AvgMissLatency is its
	// mean.
	MissLatency    *stats.Histogram `json:"MissLatency,omitempty"`
	AvgMissLatency float64
}

// Result is one simulation's outcome.
type Result struct {
	Scheme Scheme
	Cores  []CoreResult

	// CompRatio is the mean sampled compression ratio (valid bytes over
	// capacity), the paper's Figure 6a metric.
	CompRatio float64
	// MemBytes is total off-chip traffic during the window.
	MemBytes uint64
	// GBPerBillionInstr is Figure 6b's bandwidth metric.
	GBPerBillionInstr float64
	// IPC is the geometric mean of per-core IPCs; Throughput the gmean of
	// per-core CGMT throughputs; CompletionCycles the slowest core's
	// cycle count (Figure 8d's completion-time metric).
	IPC              float64
	Throughput       float64
	CompletionCycles uint64
	// Energy is the Table 7 memory-subsystem model applied to the window.
	Energy energy.Breakdown
	// LLCStats is the window's LLC counter delta.
	LLCStats cache.Stats
	// Telemetry is the per-epoch time series of the measurement window,
	// recorded when Config.Telemetry is enabled (nil otherwise). Its
	// per-epoch deltas sum to this Result's window totals and its
	// sample-weighted mean ratio reproduces CompRatio.
	Telemetry *telemetry.Series `json:"telemetry,omitempty"`
	// Sampling describes the representative-interval schedule when the
	// run used Config.Sampling (nil on full-fidelity runs): the windows
	// simulated, the instruction-reduction factor, and the profiling
	// pass's error estimates.
	Sampling *SamplingInfo `json:"sampling,omitempty"`
}

// collect computes the Result after the measurement window.
func (s *System) collect() Result {
	res := Result{Scheme: s.cfg.Scheme, CompRatio: s.ratio.Mean()}

	var totalInstr uint64
	var ipcs, tputs []float64
	for _, c := range s.cores {
		cyc := c.now - c.startCyc
		ins := c.instr - c.startInst
		cr := CoreResult{
			Instructions: ins,
			Cycles:       cyc,
			Refs:         c.refs,
			L1Misses:     c.l1Misses,
			StallCycles:  c.stall,
		}
		if cyc > 0 {
			cr.IPC = float64(ins) / float64(cyc)
		}
		compute := cyc - c.stall
		if c.l1Misses > 0 {
			cr.AvgGap = float64(compute) / float64(c.l1Misses)
		}
		// CGMT throughput (§4): each miss is overlapped with the other
		// threads' compute; only latency beyond (threads-1)*AvgGap stalls
		// the core. Computed piecewise from the online latency histogram:
		// exact for buckets entirely above or below the hideable latency,
		// mean-approximated only for the single straddling bucket.
		hidden := float64(s.cfg.Threads-1) * cr.AvgGap
		var residual uint64
		for b, n := range c.missLat.Counts {
			if n == 0 {
				continue
			}
			if excess := c.missLat.Sums[b] - hidden*float64(n); excess > 0 {
				residual += uint64(excess)
			}
		}
		cr.MissLatency = c.missLat
		cr.AvgMissLatency = c.missLat.Mean()
		tcyc := compute + residual
		if tcyc > 0 {
			cr.ThroughputIPC = float64(ins) / float64(tcyc)
		}
		res.Cores = append(res.Cores, cr)
		totalInstr += ins
		ipcs = append(ipcs, cr.IPC)
		tputs = append(tputs, cr.ThroughputIPC)
		if cyc > res.CompletionCycles {
			res.CompletionCycles = cyc
		}
	}
	res.IPC = stats.GeoMean(ipcs)
	res.Throughput = stats.GeoMean(tputs)

	ms := s.memctl.Stats()
	res.MemBytes = ms.TotalBytes() - s.memSnap.TotalBytes()
	if totalInstr > 0 {
		res.GBPerBillionInstr = float64(res.MemBytes) / float64(totalInstr)
		// bytes/instr == GB per 1e9 instructions.
	}

	ls := *s.llc.Stats()
	res.LLCStats = cache.Stats{
		Reads:        ls.Reads - s.llcSnap.Reads,
		Hits:         ls.Hits - s.llcSnap.Hits,
		Misses:       ls.Misses - s.llcSnap.Misses,
		Fills:        ls.Fills - s.llcSnap.Fills,
		WriteBacks:   ls.WriteBacks - s.llcSnap.WriteBacks,
		MemWBs:       ls.MemWBs - s.llcSnap.MemWBs,
		ExtraCycles:  ls.ExtraCycles - s.llcSnap.ExtraCycles,
		Compressions: ls.Compressions - s.llcSnap.Compressions,
		Decompressed: ls.Decompressed - s.llcSnap.Decompressed,
	}

	res.Energy = s.computeEnergy(res)
	if s.tel != nil {
		var total uint64
		for _, c := range s.cores {
			total += c.instr
		}
		res.Telemetry = s.tel.Finish(s.telemetrySample(total - s.sampleAt))
	}
	return res
}

func (s *System) computeEnergy(res Result) energy.Breakdown {
	ms := s.memctl.Stats()
	return s.energyFor(res, (ms.Reads+ms.Writes)-(s.memSnap.Reads+s.memSnap.Writes))
}

// energyFor applies the Table 7 model to a Result plus a DRAM access
// count. collect passes the live controller delta; sampled runs pass the
// population-extrapolated count (the model is linear in events, so
// applying it once to extrapolated events equals the weighted sum of
// per-window breakdowns).
func (s *System) energyFor(res Result, dramAccesses uint64) energy.Breakdown {
	p := energy.ForScheme(s.cfg.Scheme.String())
	p.ClockHz = s.cfg.ClockHz
	if s.cfg.Scheme == Uncompressed8x {
		p = energy.ScaleLLCStatic(p, 8)
	}
	var refs uint64
	for _, c := range res.Cores {
		refs += c.Refs
	}
	ev := energy.Events{
		Cycles:            res.CompletionCycles,
		Cores:             s.cfg.Cores,
		L1Accesses:        refs,
		LLCAccesses:       res.LLCStats.Reads + res.LLCStats.Fills + res.LLCStats.WriteBacks,
		DRAMAccesses:      dramAccesses,
		Compressions:      res.LLCStats.Compressions,
		DecompressedBytes: res.LLCStats.Decompressed,
	}
	return energy.Compute(p, ev)
}
