package sim

import (
	"encoding/json"
	"math"
	"testing"

	"morc/internal/telemetry"
)

// telCfg is quickCfg with telemetry on a grid that yields several epochs
// inside the 300k-instruction measurement window.
func telCfg(s Scheme) Config {
	cfg := quickCfg(s)
	cfg.Telemetry = telemetry.Config{Every: 60_000}
	return cfg
}

func TestOnProgressMonotonicAndExact(t *testing.T) {
	cfg := quickCfg(MORC)
	s, err := NewSingle("gcc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.WarmupInstr + cfg.MeasureInstr
	var calls int
	var prev, last uint64
	s.OnProgress = func(done, total uint64) {
		calls++
		if total != want {
			t.Fatalf("progress total %d, want %d", total, want)
		}
		if done > total {
			t.Fatalf("progress done %d exceeds total %d", done, total)
		}
		if done < prev {
			t.Fatalf("progress went backwards: %d after %d", done, prev)
		}
		prev, last = done, done
	}
	s.Run()
	if calls == 0 {
		t.Fatal("OnProgress never called")
	}
	if last != want {
		t.Fatalf("final progress %d, want exactly %d", last, want)
	}
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	res := RunSingle("gcc", quickCfg(MORC))
	if res.Telemetry != nil {
		t.Fatal("telemetry recorded without being enabled")
	}
	if b, _ := json.Marshal(res); string(b) == "" || jsonHasKey(b, "telemetry") {
		t.Fatal("disabled run serializes a telemetry field")
	}
}

func jsonHasKey(b []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// TestTelemetryDoesNotPerturbResults: enabling telemetry must be a pure
// observer — every non-telemetry field stays byte-identical.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain := RunSingle("omnetpp", quickCfg(SC2))
	traced := RunSingle("omnetpp", telCfg(SC2))
	if traced.Telemetry == nil {
		t.Fatal("no telemetry recorded")
	}
	traced.Telemetry = nil
	pb, _ := json.Marshal(plain)
	tb, _ := json.Marshal(traced)
	if string(pb) != string(tb) {
		t.Fatalf("telemetry perturbed the run:\n%s\n%s", pb, tb)
	}
}

func TestTelemetryEpochInvariants(t *testing.T) {
	skipIfShort(t)
	for _, sch := range []Scheme{Uncompressed, SC2, MORC, Skewed} {
		cfg := telCfg(sch)
		var streamed []telemetry.Epoch
		s, err := NewSingle("gcc", cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.OnEpoch = func(e telemetry.Epoch) { streamed = append(streamed, e) }
		res := s.Run()

		ts := res.Telemetry
		if ts == nil {
			t.Fatalf("%v: no telemetry", sch)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		if ts.Scheme != sch.String() {
			t.Errorf("%v: series labeled %q", sch, ts.Scheme)
		}
		if want := int(cfg.MeasureInstr / cfg.Telemetry.Every); len(ts.Epochs) < want {
			t.Errorf("%v: %d epochs for a %d-instruction window on a %d grid",
				sch, len(ts.Epochs), cfg.MeasureInstr, cfg.Telemetry.Every)
		}
		if len(streamed) != len(ts.Epochs) {
			t.Errorf("%v: streamed %d epochs, series holds %d", sch, len(streamed), len(ts.Epochs))
		}

		// The trajectory must conserve the window totals the Result reports.
		tot := ts.Totals()
		if tot.LLCReads != res.LLCStats.Reads || tot.LLCHits != res.LLCStats.Hits ||
			tot.Fills != res.LLCStats.Fills || tot.WriteBacks != res.LLCStats.WriteBacks {
			t.Errorf("%v: epoch sums %+v != window LLC stats %+v", sch, tot, res.LLCStats)
		}
		if got := tot.MemReadBytes + tot.MemWriteBytes; got != res.MemBytes {
			t.Errorf("%v: epoch memory bytes %d != window %d", sch, got, res.MemBytes)
		}
		if tot.Instr != res.Cores[0].Instructions {
			t.Errorf("%v: epoch instructions %d != window %d", sch, tot.Instr, res.Cores[0].Instructions)
		}

		// The sample-weighted epoch ratio reproduces the headline CompRatio.
		if got := ts.MeanRatio(); math.Abs(got-res.CompRatio) > 1e-6 {
			t.Errorf("%v: series mean ratio %v != CompRatio %v", sch, got, res.CompRatio)
		}

		// Compressed schemes publish scheme-specific probes.
		if sch != Uncompressed {
			last := ts.Epochs[len(ts.Epochs)-1]
			if len(last.Probes) == 0 {
				t.Errorf("%v: no probes on final epoch", sch)
			}
		}
	}
}

func TestTelemetryMORCProbes(t *testing.T) {
	skipIfShort(t)
	res := RunSingle("gcc", telCfg(MORC))
	last := res.Telemetry.Epochs[len(res.Telemetry.Epochs)-1]
	for _, key := range []string{"morc_log_occupancy", "morc_invalid_fraction", "morc_active_logs"} {
		if _, ok := last.Probes[key]; !ok {
			t.Errorf("missing MORC probe %q (have %v)", key, last.Probes)
		}
	}
	if occ := last.Probes["morc_log_occupancy"]; occ <= 0 || occ > 1 {
		t.Errorf("morc_log_occupancy %v out of (0,1]", occ)
	}
}

func TestMissLatencyHistogram(t *testing.T) {
	res := RunSingle("mcf", quickCfg(MORC))
	c := res.Cores[0]
	if c.MissLatency == nil {
		t.Fatal("no miss-latency histogram")
	}
	if c.MissLatency.N != c.L1Misses {
		t.Fatalf("histogram holds %d samples for %d misses", c.MissLatency.N, c.L1Misses)
	}
	if c.AvgMissLatency < float64(DefaultConfig().LLCLatency) {
		t.Fatalf("average miss latency %.1f below the LLC base latency", c.AvgMissLatency)
	}
	// Stall cycles are exactly the summed miss latencies.
	if got := c.MissLatency.Sum; got != float64(c.StallCycles) {
		t.Fatalf("histogram sum %v != stall cycles %d", got, c.StallCycles)
	}
}
