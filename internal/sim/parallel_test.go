package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// progressLog records an OnProgress callback sequence for comparison.
type progressLog struct {
	events [][2]uint64
}

func (p *progressLog) hook(done, total uint64) {
	p.events = append(p.events, [2]uint64{done, total})
}

// parCfg is a small configuration that still crosses several sampler and
// progress boundaries.
func parCfg(s Scheme) Config {
	cfg := DefaultConfig()
	cfg.Scheme = s
	cfg.WarmupInstr = 30_000
	cfg.MeasureInstr = 60_000
	cfg.SampleEvery = 20_000
	return cfg
}

// runBoth runs the same workload on the sequential engine and on the
// parallel engine with the given worker count, returning both results
// and progress logs.
func runBoth(t *testing.T, workload string, cfg Config, workers int) (seq, par Result, seqP, parP *progressLog) {
	t.Helper()
	build := func(parallelism int) (*System, *progressLog) {
		c := cfg
		c.Parallelism = parallelism
		s, err := NewSingle(workload, c)
		if err != nil {
			t.Fatal(err)
		}
		p := &progressLog{}
		s.OnProgress = p.hook
		return s, p
	}
	ss, seqP := build(0)
	ps, parP := build(workers)
	seq = ss.Run()
	par = ps.Run()
	return seq, par, seqP, parP
}

// TestParallelMatchesSequential is the in-package equivalence smoke
// check: byte-identical Result JSON and identical OnProgress sequences
// for a representative scheme pair. The cross-scheme / cross-core-count
// matrix lives in internal/check.
func TestParallelMatchesSequential(t *testing.T) {
	for _, scheme := range []Scheme{Uncompressed, MORC} {
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/p%d", scheme, workers), func(t *testing.T) {
				cfg := parCfg(scheme)
				cfg.Telemetry.Every = 25_000
				seq, par, seqP, parP := runBoth(t, "gcc", cfg, workers)
				sj, err := json.Marshal(seq)
				if err != nil {
					t.Fatal(err)
				}
				pj, err := json.Marshal(par)
				if err != nil {
					t.Fatal(err)
				}
				if string(sj) != string(pj) {
					t.Errorf("parallel Result differs from sequential:\nseq: %.200s\npar: %.200s", sj, pj)
				}
				if !reflect.DeepEqual(seqP.events, parP.events) {
					t.Errorf("OnProgress sequences differ: seq %d events %v..., par %d events %v...",
						len(seqP.events), head(seqP.events), len(parP.events), head(parP.events))
				}
			})
		}
	}
}

func head(ev [][2]uint64) [][2]uint64 {
	if len(ev) > 4 {
		return ev[:4]
	}
	return ev
}

// TestParallelMultiCore checks the engine on a multi-program mix, where
// cross-core LLC and bandwidth interleaving actually exercises the
// canonical-order machinery.
func TestParallelMultiCore(t *testing.T) {
	skipIfShort(t)
	cfg := parCfg(MORC)
	cfg.WarmupInstr = 8_000
	cfg.MeasureInstr = 20_000
	cfg.SampleEvery = 10_000
	cfg.Telemetry.Every = 40_000

	run := func(parallelism int) (Result, *progressLog) {
		c := cfg
		c.Parallelism = parallelism
		s, err := NewMix("M0", c)
		if err != nil {
			t.Fatal(err)
		}
		p := &progressLog{}
		s.OnProgress = p.hook
		return s.Run(), p
	}
	seq, seqP := run(0)
	sj, _ := json.Marshal(seq)
	for _, workers := range []int{2, 7, 16} {
		par, parP := run(workers)
		pj, _ := json.Marshal(par)
		if string(sj) != string(pj) {
			t.Errorf("p=%d: Result differs from sequential", workers)
		}
		if !reflect.DeepEqual(seqP.events, parP.events) {
			t.Errorf("p=%d: OnProgress sequences differ (%d vs %d events)",
				workers, len(seqP.events), len(parP.events))
		}
	}
}

// TestParallelBankedLLC checks engine equivalence when the LLC is
// sharded into banks — the organization both engines must build
// identically for a given LLCBanks value.
func TestParallelBankedLLC(t *testing.T) {
	cfg := parCfg(Uncompressed)
	cfg.LLCBanks = 4
	seq, par, _, _ := runBoth(t, "lbm", cfg, 3)
	sj, _ := json.Marshal(seq)
	pj, _ := json.Marshal(par)
	if string(sj) != string(pj) {
		t.Errorf("banked LLC: parallel Result differs from sequential")
	}
}

// TestParallelCancelStress hammers the untested parallel RunCtx
// mid-run cancellation path: many concurrent runs, each cancelled at a
// randomized point, all under whatever race detector the test binary
// carries. Cancelled runs must return ctx.Err() with a zero Result and
// must not leak worker goroutines (the -race lane would flag unsynchronized
// state, and the WaitGroup join in runParallel would hang on a leak).
func TestParallelCancelStress(t *testing.T) {
	const runs = 8
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := parCfg(MORC)
			cfg.MeasureInstr = 40_000_000 // far more than the cancel allows
			cfg.Parallelism = 2 + i%3
			s, err := NewSingle("gcc", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			delay := time.Duration(rand.Intn(30)) * time.Millisecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			res, err := s.RunCtx(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("run %d: err = %v, want context.Canceled", i, err)
			}
			if res.Cores != nil {
				t.Errorf("run %d: cancelled run returned non-zero Result", i)
			}
		}(i)
	}
	wg.Wait()
}

// TestRunPanicsOnRunCtxError covers sim.Run's panic path: Run promises
// an infallible signature and must panic loudly when RunCtx fails (a
// negative Parallelism is the one validation RunCtx performs before
// touching any core).
func TestRunPanicsOnRunCtxError(t *testing.T) {
	cfg := parCfg(Uncompressed)
	cfg.Parallelism = -1
	s, err := NewSingle("gcc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on RunCtx error")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "Parallelism") {
			t.Fatalf("panic value %v, want message naming Parallelism", r)
		}
	}()
	s.Run()
}

// TestNegativeParallelismRejected covers the error (non-panicking) side
// of the same validation.
func TestNegativeParallelismRejected(t *testing.T) {
	cfg := parCfg(Uncompressed)
	cfg.Parallelism = -3
	s, err := NewSingle("gcc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCtx(context.Background()); err == nil {
		t.Fatal("RunCtx accepted negative Parallelism")
	}
}

// TestClampProgress unit-tests the overshoot clamp both engines report
// through: cores can overshoot their per-core target by one access's
// instruction count, and the callback must never exceed the total.
func TestClampProgress(t *testing.T) {
	cases := []struct{ instr, total, want uint64 }{
		{0, 100, 0},
		{99, 100, 99},
		{100, 100, 100},
		{101, 100, 100}, // the overshoot case
		{^uint64(0), 100, 100},
	}
	for _, c := range cases {
		if got := clampProgress(c.instr, c.total); got != c.want {
			t.Errorf("clampProgress(%d, %d) = %d, want %d", c.instr, c.total, got, c.want)
		}
	}
}

// TestOnProgressContract asserts the behavioral consequences of the
// clamp on a real run, for both engines: progress is nondecreasing,
// never exceeds the total, and lands exactly on (total, total).
func TestOnProgressContract(t *testing.T) {
	for _, parallelism := range []int{0, 3} {
		cfg := parCfg(MORC)
		cfg.Parallelism = parallelism
		s, err := NewSingle("gcc", cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := &progressLog{}
		s.OnProgress = p.hook
		s.Run()
		total := uint64(cfg.WarmupInstr + cfg.MeasureInstr)
		if len(p.events) == 0 {
			t.Fatalf("p=%d: no progress events", parallelism)
		}
		var prev uint64
		for i, ev := range p.events {
			if ev[1] != total {
				t.Fatalf("p=%d event %d: total = %d, want %d", parallelism, i, ev[1], total)
			}
			if ev[0] > total {
				t.Fatalf("p=%d event %d: done %d exceeds total %d (clamp failed)", parallelism, i, ev[0], total)
			}
			if ev[0] < prev {
				t.Fatalf("p=%d event %d: done %d went backwards from %d", parallelism, i, ev[0], prev)
			}
			prev = ev[0]
		}
		if last := p.events[len(p.events)-1]; last[0] != total {
			t.Fatalf("p=%d: final progress %d, want exactly %d", parallelism, last[0], total)
		}
	}
}
