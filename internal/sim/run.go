package sim

import (
	"context"
	"fmt"

	"morc/internal/trace"
)

// RunSingle simulates one workload on a single-core system.
func RunSingle(workload string, cfg Config) Result {
	res, err := RunSingleCtx(context.Background(), workload, cfg)
	if err != nil {
		panic("sim: " + err.Error())
	}
	return res
}

// RunSingleCtx is RunSingle under a context: the run stops early with
// ctx.Err() if cancelled, and unknown workloads are an error instead of
// a panic.
func RunSingleCtx(ctx context.Context, workload string, cfg Config) (Result, error) {
	s, err := NewSingle(workload, cfg)
	if err != nil {
		return Result{}, err
	}
	return s.RunCtx(ctx)
}

// NewSingle builds a single-core system running the given workload.
func NewSingle(workload string, cfg Config) (*System, error) {
	cfg.Cores = 1
	p, err := trace.Get(workload)
	if err != nil {
		return nil, err
	}
	return New(cfg, []trace.Profile{p}), nil
}

// RunMix simulates one of Table 6's 16-program mixes on a 16-core system
// with a shared LLC and shared bandwidth.
func RunMix(mixName string, cfg Config) Result {
	res, err := RunMixCtx(context.Background(), mixName, cfg)
	if err != nil {
		panic("sim: " + err.Error())
	}
	return res
}

// RunMixCtx is RunMix under a context.
func RunMixCtx(ctx context.Context, mixName string, cfg Config) (Result, error) {
	s, err := NewMix(mixName, cfg)
	if err != nil {
		return Result{}, err
	}
	return s.RunCtx(ctx)
}

// NewMix builds the 16-core system for one of Table 6's mixes.
func NewMix(mixName string, cfg Config) (*System, error) {
	mixes := trace.MultiProgramMixes()
	progs, ok := mixes[mixName]
	if !ok {
		return nil, fmt.Errorf("unknown mix %q", mixName)
	}
	cfg.Cores = len(progs)
	return New(cfg, trace.MixPrograms(progs)), nil
}

// SingleRun bundles a finished system with its result for callers that
// need post-run access to the LLC (calibration tools, experiments).
type SingleRun struct {
	System *System
	Result Result
}

// RunSingleSystem is RunSingle, additionally returning the system.
func RunSingleSystem(workload string, cfg Config) SingleRun {
	s, err := NewSingle(workload, cfg)
	if err != nil {
		panic("sim: " + err.Error())
	}
	return SingleRun{System: s, Result: s.Run()}
}
