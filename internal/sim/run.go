package sim

import "morc/internal/trace"

// RunSingle simulates one workload on a single-core system.
func RunSingle(workload string, cfg Config) Result {
	cfg.Cores = 1
	p := trace.MustGet(workload)
	return New(cfg, []trace.Profile{p}).Run()
}

// RunMix simulates one of Table 6's 16-program mixes on a 16-core system
// with a shared LLC and shared bandwidth.
func RunMix(mixName string, cfg Config) Result {
	mixes := trace.MultiProgramMixes()
	progs, ok := mixes[mixName]
	if !ok {
		panic("sim: unknown mix " + mixName)
	}
	cfg.Cores = len(progs)
	return New(cfg, trace.MixPrograms(progs)).Run()
}

// SingleRun bundles a finished system with its result for callers that
// need post-run access to the LLC (calibration tools, experiments).
type SingleRun struct {
	System *System
	Result Result
}

// RunSingleSystem is RunSingle, additionally returning the system.
func RunSingleSystem(workload string, cfg Config) SingleRun {
	cfg.Cores = 1
	p := trace.MustGet(workload)
	s := New(cfg, []trace.Profile{p})
	return SingleRun{System: s, Result: s.Run()}
}
