// Package sim is the trace-driven manycore simulator the evaluation runs
// on: in-order cores (1 CPI for non-memory instructions), private 32KB
// 4-way L1s, a shared non-inclusive LLC of the configured organization,
// and an FCFS bandwidth-limited memory system — the system of Table 5.
//
// The simulator is cycle-accounting rather than micro-architectural,
// exactly like the paper's PriME methodology: every L1 miss blocks its
// core for the LLC access latency (base + decompression) plus, on an LLC
// miss, the DRAM access and bandwidth-queueing delay. Throughput is
// additionally estimated under the paper's 4-thread coarse-grain
// multithreading model (§4): a thread switch hides miss latency up to
// (threads-1) × the workload's average inter-miss gap.
package sim

import (
	"fmt"

	"morc/internal/baseline"
	"morc/internal/cache"
	"morc/internal/core"
	"morc/internal/telemetry"
)

// Scheme selects the LLC organization.
type Scheme int

// The compared LLC organizations.
const (
	Uncompressed Scheme = iota
	Uncompressed8x
	Adaptive
	Decoupled
	SC2
	MORC
	MORCMerged
	// Skewed is the Skewed Compressed Cache (§6's related work), included
	// as an extension comparison point.
	Skewed
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Uncompressed:
		return "Uncompressed"
	case Uncompressed8x:
		return "Uncompressed8x"
	case Adaptive:
		return "Adaptive"
	case Decoupled:
		return "Decoupled"
	case SC2:
		return "SC2"
	case MORC:
		return "MORC"
	case MORCMerged:
		return "MORCMerged"
	case Skewed:
		return "Skewed"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ComparedSchemes returns the five schemes of Figure 6.
func ComparedSchemes() []Scheme {
	return []Scheme{Uncompressed, Adaptive, Decoupled, SC2, MORC}
}

// Config is the system configuration (defaults = Table 5).
type Config struct {
	Cores           int
	L1Bytes, L1Ways int
	LLCBytesPerCore int
	LLCLatency      int // base cycles
	Scheme          Scheme
	// BWPerCore is off-chip bandwidth per core in bytes/sec; the channel
	// is shared, sized BWPerCore × Cores.
	BWPerCore  float64
	MemLatency uint64 // DRAM access cycles
	// MemBanks enables DDR3 bank-level timing in the memory controller
	// (0 = idealized channel, the configuration the headline results
	// use); MemBankBusy is the row-cycle time tRC in core cycles.
	MemBanks    int
	MemBankBusy uint64
	Threads     int  // CGMT threads per core for the throughput model
	Inclusive   bool // insert fetched lines on store misses too (§5.4.2)
	// LinkCompression compresses lines on the memory channel with C-Pack
	// (§6's "memory link compression", which the paper calls
	// complementary to cache compression): transfers consume bandwidth
	// proportional to the compressed size instead of 64 bytes.
	LinkCompression bool
	ClockHz         float64

	WarmupInstr  uint64 // per core
	MeasureInstr uint64 // per core
	SampleEvery  uint64 // compression-ratio sampling interval (instructions)

	// Telemetry, when enabled (Every > 0), records a per-epoch time
	// series of the measurement window onto Result.Telemetry; see
	// morc/internal/telemetry. The paper's grid is 10M instructions
	// (telemetry.DefaultEvery). Disabled by default: the hot loop then
	// pays only a nil check.
	Telemetry telemetry.Config

	// Sampling, when enabled (IntervalInstr > 0), switches the run to
	// representative-interval sampling: profile, cluster, simulate only
	// one window per cluster in detail, extrapolate (see sampling.go and
	// morc/internal/sample). Result.Sampling then reports the schedule
	// and error estimates. Composable with Parallelism (each detailed
	// phase runs on the configured engine) and Telemetry (one epoch per
	// measured window).
	Sampling SamplingConfig

	// MORCConfig overrides the MORC configuration (nil = paper default
	// for the LLC capacity). Used by the sensitivity studies.
	MORCConfig *core.Config

	// Parallelism is the number of simulation worker goroutines. 0 or 1
	// (the default) runs the sequential reference engine; larger values
	// run the deterministic parallel engine, which is proven by
	// internal/check's equivalence suite to produce byte-identical
	// results, telemetry series, and progress callbacks for every scheme,
	// core count, and seed. Negative values are rejected by RunCtx.
	Parallelism int

	// LLCBanks shards the LLC into address-interleaved, independently
	// locked banks (cache.Banked) behind the same cache.LLC interface.
	// 0 or 1 keeps the monolithic organization — the default, which the
	// golden results depend on. Banking changes the simulated
	// organization (each bank is a capacity/LLCBanks instance of the
	// scheme), so results differ from the monolithic cache; but for a
	// fixed LLCBanks value both engines build the identical organization,
	// so parallel-vs-sequential byte-identity holds bank count by bank
	// count. Capacity must divide evenly by the bank count.
	LLCBanks int
}

// DefaultConfig returns the Table 5 system for one core.
func DefaultConfig() Config {
	return Config{
		Cores:           1,
		L1Bytes:         32 * 1024,
		L1Ways:          4,
		LLCBytesPerCore: 128 * 1024,
		LLCLatency:      14,
		Scheme:          Uncompressed,
		BWPerCore:       100e6,
		MemLatency:      80,
		Threads:         4,
		ClockHz:         2e9,
		WarmupInstr:     500_000,
		MeasureInstr:    1_000_000,
		SampleEvery:     100_000,
	}
}

// NewLLC builds the configured LLC organization. It is how test
// harnesses (internal/check) obtain the exact cache-under-test the
// simulator would run for a given Config.
func (cfg Config) NewLLC() cache.LLC { return cfg.newLLC() }

// newLLC builds the configured LLC organization, sharding it into
// address-interleaved banks when LLCBanks > 1.
func (cfg Config) newLLC() cache.LLC {
	capacity := cfg.LLCBytesPerCore * cfg.Cores
	if cfg.LLCBanks > 1 {
		if capacity%cfg.LLCBanks != 0 {
			panic(fmt.Sprintf("sim: LLC capacity %d not divisible into %d banks", capacity, cfg.LLCBanks))
		}
		per := capacity / cfg.LLCBanks
		return cache.NewBanked(cfg.LLCBanks, func(int) cache.LLC { return cfg.buildLLC(per) })
	}
	return cfg.buildLLC(capacity)
}

// buildLLC builds one instance of the configured scheme with the given
// data capacity (the whole LLC, or one bank of it).
func (cfg Config) buildLLC(capacity int) cache.LLC {
	switch cfg.Scheme {
	case Uncompressed:
		return cache.NewSetAssoc(capacity, 8, cache.LRU)
	case Uncompressed8x:
		return cache.NewSetAssoc(8*capacity, 8, cache.LRU)
	case Adaptive:
		return baseline.New(baseline.DefaultConfig(baseline.Adaptive, capacity))
	case Decoupled:
		return baseline.New(baseline.DefaultConfig(baseline.Decoupled, capacity))
	case SC2:
		return baseline.New(baseline.DefaultConfig(baseline.SC2, capacity))
	case Skewed:
		return baseline.NewSkewed(capacity)
	case MORC, MORCMerged:
		var mc core.Config
		if cfg.MORCConfig != nil {
			mc = *cfg.MORCConfig
			mc.CacheBytes = capacity
		} else {
			mc = core.DefaultConfig(capacity)
		}
		if cfg.Scheme == MORCMerged {
			mc.Merged = true
		}
		return core.New(mc)
	}
	panic(fmt.Sprintf("sim: unknown scheme %v", cfg.Scheme))
}
