package sim

import (
	"math"
	"testing"
)

// samplingTestConfig is a small budget that still cuts into enough
// intervals for clustering to mean something.
func samplingTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Scheme = MORC
	cfg.WarmupInstr = 60_000
	cfg.MeasureInstr = 90_000
	cfg.SampleEvery = 30_000
	cfg.Sampling = SamplingConfig{IntervalInstr: 15_000, MaxClusters: 3, ReplayInstr: 30_000}
	return cfg
}

func TestSampledRunBasics(t *testing.T) {
	cfg := samplingTestConfig()
	// A short replay leaves fast-forward gaps between windows, so the
	// instruction-reduction accounting is actually exercised. (At the
	// accuracy settings — replay 2L on a 6-interval window — the schedule
	// degenerates to a contiguous run and detailed ≈ equivalent.)
	cfg.Sampling.ReplayInstr = 7_500
	res := RunSingle("gcc", cfg)
	info := res.Sampling
	if info == nil {
		t.Fatal("sampled run reported no SamplingInfo")
	}
	if info.Intervals != 6 {
		t.Fatalf("intervals = %d, want 6", info.Intervals)
	}
	if info.Clusters < 1 || info.Clusters > 3 {
		t.Fatalf("clusters = %d, want 1..3", info.Clusters)
	}
	if len(info.Windows) != info.Clusters {
		t.Fatalf("%d windows for %d clusters", len(info.Windows), info.Clusters)
	}
	var wsum float64
	pop := 0
	last := -1
	for _, w := range info.Windows {
		if w.Interval <= last {
			t.Fatalf("windows not in ascending interval order: %+v", info.Windows)
		}
		last = w.Interval
		if w.Interval < 0 || w.Interval >= info.Intervals {
			t.Fatalf("window interval %d out of range", w.Interval)
		}
		wsum += w.Weight
		pop += w.Population
	}
	if pop != info.Intervals {
		t.Fatalf("populations sum to %d, want %d", pop, info.Intervals)
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", wsum)
	}
	if info.DetailedInstr == 0 || info.DetailedInstr >= info.EquivalentInstr {
		t.Fatalf("detailed %d not in (0, equivalent %d)", info.DetailedInstr, info.EquivalentInstr)
	}
	if info.ProfiledInstr == 0 {
		t.Fatal("no profiled instructions recorded")
	}
	if res.IPC <= 0 || res.CompRatio <= 0 || res.MemBytes == 0 {
		t.Fatalf("implausible extrapolated result: IPC %g ratio %g mem %d", res.IPC, res.CompRatio, res.MemBytes)
	}
	// Extrapolated per-core instruction counts must land on the full
	// window (modulo per-access overshoot scaled by the largest weight).
	for i, c := range res.Cores {
		got := float64(c.Instructions)
		want := float64(cfg.MeasureInstr)
		if math.Abs(got-want)/want > 0.01 {
			t.Fatalf("core %d extrapolated instructions %v, want ≈%v", i, c.Instructions, cfg.MeasureInstr)
		}
	}
}

// TestSampledFallbackFewIntervals: an interval length that fits fewer
// than two whole intervals silently falls back to the full-fidelity run.
func TestSampledFallbackFewIntervals(t *testing.T) {
	cfg := samplingTestConfig()
	cfg.Sampling.IntervalInstr = 80_000 // only one interval fits in 90k
	res := RunSingle("gcc", cfg)
	if res.Sampling != nil {
		t.Fatal("expected full-fidelity fallback with < 2 intervals")
	}
	full := cfg
	full.Sampling = SamplingConfig{}
	want := RunSingle("gcc", full)
	if res.IPC != want.IPC || res.CompRatio != want.CompRatio {
		t.Fatalf("fallback run differs from plain full run: %+v vs %+v", res.IPC, want.IPC)
	}
}

func TestSampledRejectsNegativeClusters(t *testing.T) {
	cfg := samplingTestConfig()
	cfg.Sampling.MaxClusters = -1
	s, err := NewSingle("gcc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCtx(t.Context()); err == nil {
		t.Fatal("negative MaxClusters accepted")
	}
}

// TestSampledVsFullClose is a loose sanity check that the sampled
// estimate lands near the full-fidelity result; the authoritative 5%
// bound across schemes and golden configs is pinned in internal/check.
func TestSampledVsFullClose(t *testing.T) {
	cfg := samplingTestConfig()
	sampled := RunSingle("gcc", cfg)
	cfg.Sampling = SamplingConfig{}
	full := RunSingle("gcc", cfg)
	relErr := func(a, b float64) float64 {
		if b == 0 {
			return math.Abs(a - b)
		}
		return math.Abs(a-b) / math.Abs(b)
	}
	if e := relErr(sampled.IPC, full.IPC); e > 0.10 {
		t.Errorf("IPC off by %.1f%%: sampled %g full %g", 100*e, sampled.IPC, full.IPC)
	}
	if e := relErr(sampled.CompRatio, full.CompRatio); e > 0.10 {
		t.Errorf("CompRatio off by %.1f%%: sampled %g full %g", 100*e, sampled.CompRatio, full.CompRatio)
	}
}
