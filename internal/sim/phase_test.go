package sim

import (
	"context"
	"reflect"
	"testing"
)

// collectPhases runs a system with an OnPhase hook and returns the
// event sequence.
func collectPhases(t *testing.T, workload string, cfg Config) ([]PhaseEvent, Result) {
	t.Helper()
	s, err := NewSingle(workload, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var evs []PhaseEvent
	s.OnPhase = func(ev PhaseEvent) { evs = append(evs, ev) }
	res, err := s.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return evs, res
}

func TestFullRunPhases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = MORC
	cfg.WarmupInstr = 30_000
	cfg.MeasureInstr = 60_000
	evs, res := collectPhases(t, "gcc", cfg)
	if res.Sampling != nil {
		t.Fatal("full run reported sampling")
	}
	if len(evs) != 2 || evs[0].Phase != "warmup" || evs[1].Phase != "measure" {
		t.Fatalf("full-run phases = %+v, want warmup then measure", evs)
	}
	if evs[0].Window != -1 || evs[0].Interval != -1 {
		t.Fatalf("non-window event carries window fields: %+v", evs[0])
	}
	if evs[1].Instr < evs[0].Instr {
		t.Fatalf("phase instruction clock ran backwards: %+v", evs)
	}
}

func TestSampledRunPhases(t *testing.T) {
	cfg := samplingTestConfig()
	cfg.Sampling.ReplayInstr = 7_500
	evs, res := collectPhases(t, "gcc", cfg)
	if res.Sampling == nil {
		t.Fatal("run did not sample")
	}

	// Every window in the schedule is announced exactly once, in order,
	// with its interval index; instruction positions never run backwards.
	var wins []PhaseEvent
	var last uint64
	for _, ev := range evs {
		if ev.Instr < last {
			t.Fatalf("phase instruction clock ran backwards: %+v", evs)
		}
		last = ev.Instr
		switch ev.Phase {
		case "window":
			wins = append(wins, ev)
		case "warmup", "replay", "fastforward":
			if ev.Window != -1 || ev.Interval != -1 {
				t.Fatalf("non-window event carries window fields: %+v", ev)
			}
		default:
			t.Fatalf("unknown phase %q", ev.Phase)
		}
	}
	if len(wins) != len(res.Sampling.Windows) {
		t.Fatalf("%d window events for %d scheduled windows", len(wins), len(res.Sampling.Windows))
	}
	for i, ev := range wins {
		if ev.Window != i {
			t.Fatalf("window events out of sequence: %+v", wins)
		}
		if ev.Interval != res.Sampling.Windows[i].Interval {
			t.Fatalf("window %d announced interval %d, schedule says %d", i, ev.Interval, res.Sampling.Windows[i].Interval)
		}
	}
	// The run begins with the segment that covers warmup.
	if evs[0].Phase != "warmup" {
		t.Fatalf("sampled run did not start with warmup: %+v", evs)
	}

	// Same seed, same event sequence — the hook is as deterministic as
	// the results it narrates.
	evs2, _ := collectPhases(t, "gcc", cfg)
	if !reflect.DeepEqual(evs, evs2) {
		t.Fatalf("same-seed phase sequences differ:\n%+v\n%+v", evs, evs2)
	}
}
