package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean of 1..4")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatalf("geomean(1,4) = %g", GeoMean([]float64{1, 4}))
	}
	if !almost(GeoMean([]float64{2, 2, 2}), 2) {
		t.Fatal("geomean of constant")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty")
	}
	// A zero must not collapse the mean to 0.
	if GeoMean([]float64{0, 100}) <= 0 {
		t.Fatal("geomean with zero entry collapsed")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 100), 5) {
		t.Fatal("extreme percentiles")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Fatalf("median = %g", Percentile(xs, 50))
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Fatalf("p25 = %g", Percentile(xs, 25))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	h.Add(5)   // bucket 0: (-inf,10)
	h.Add(10)  // bucket 1: [10,20)
	h.Add(15)  // bucket 1
	h.Add(25)  // bucket 2
	h.Add(30)  // bucket 3 (overflow)
	h.Add(100) // bucket 3
	want := []uint64{1, 2, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	fr := h.Fraction()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if !almost(sum, 1) {
		t.Fatalf("fractions sum to %g", sum)
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram([]float64{1})
	for _, f := range h.Fraction() {
		if f != 0 {
			t.Fatal("empty histogram fraction non-zero")
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestSampler(t *testing.T) {
	s := NewSampler(10)
	s.Tick(5, 100) // no boundary crossed
	if s.Count() != 0 {
		t.Fatal("sampled before interval")
	}
	s.Tick(10, 2) // crosses 10
	s.Tick(35, 4) // crosses 20, 30
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	if !almost(s.Mean(), (2+4+4)/3.0) {
		t.Fatalf("mean = %g", s.Mean())
	}
}

func TestSamplerForce(t *testing.T) {
	s := NewSampler(1000)
	s.ForceSample(7)
	if !almost(s.Mean(), 7) {
		t.Fatal("forced sample mean")
	}
}

func TestSamplerZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewSampler(0)
}

func TestGeoMeanLeqMeanProperty(t *testing.T) {
	// AM-GM inequality: GeoMean <= Mean for positive data.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram([]float64{-1, 0, 1})
		for _, s := range samples {
			if math.IsNaN(s) {
				continue
			}
			h.Add(s)
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		return total == h.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerDue(t *testing.T) {
	s := NewSampler(10)
	if s.Due(5) {
		t.Fatal("due before interval")
	}
	if !s.Due(10) {
		t.Fatal("not due at boundary")
	}
	s.Tick(10, 1)
	if s.Due(15) {
		t.Fatal("due again before next boundary")
	}
}
