package stats

import (
	"math"
	"testing"
)

// TestEmptyInputsAllZero: every summary function must return 0 for an
// empty table rather than NaN (0/0) or panic.
func TestEmptyInputsAllZero(t *testing.T) {
	var none []float64
	for name, got := range map[string]float64{
		"Mean":       Mean(none),
		"GeoMean":    GeoMean(none),
		"Min":        Min(none),
		"Max":        Max(none),
		"Percentile": Percentile(none, 50),
	} {
		if got != 0 {
			t.Errorf("%s(empty) = %v, want 0", name, got)
		}
	}
	if got := (&Sampler{Interval: 10}).Mean(); got != 0 {
		t.Errorf("Sampler.Mean with no samples = %v, want 0", got)
	}
}

// TestOverflowMagnitudeValues: values near the float64 extremes must
// not turn a mean into NaN through naive intermediate overflow of a
// single element (sums of two maxima do overflow to +Inf, which is the
// documented float64 behavior — but a single huge value must survive).
func TestOverflowMagnitudeValues(t *testing.T) {
	huge := math.MaxFloat64
	if got := Mean([]float64{huge}); got != huge {
		t.Errorf("Mean([max]) = %v", got)
	}
	if got := Max([]float64{-huge, huge}); got != huge {
		t.Errorf("Max = %v", got)
	}
	if got := Min([]float64{-huge, huge}); got != -huge {
		t.Errorf("Min = %v", got)
	}
	// GeoMean works in log space, so values whose product would
	// overflow (1e300 * 1e300 >> MaxFloat64) still average correctly.
	big := 1e300
	got := GeoMean([]float64{big, big})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("GeoMean([1e300, 1e300]) = %v", got)
	}
	if rel := math.Abs(got-big) / big; rel > 1e-9 {
		t.Errorf("GeoMean([1e300, 1e300]) = %v, want ~%v", got, big)
	}
}

// TestPercentileClampsAndInterpolates: out-of-range percentiles clamp
// to the extremes; in-range ones interpolate linearly between ranks.
func TestPercentileClampsAndInterpolates(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{-5, 10}, {0, 10}, {100, 40}, {150, 40},
		{50, 25},        // midpoint between ranks 1 and 2
		{25, 17.5},      // 0.75 of the way from 10 to 20
		{100.0 / 3, 20}, // exactly on rank 1
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile(single, 99) = %v, want 7", got)
	}
}

// TestHistogramOverflowAndUnderflow: samples below every bound land in
// the first bucket, samples at or above the last bound in the implicit
// overflow bucket, and counts stay exact for overflow-prone totals.
func TestHistogramOverflowAndUnderflow(t *testing.T) {
	h := NewHistogram([]float64{0, 10})
	h.Add(math.Inf(-1))
	h.Add(-1)
	h.Add(0) // bound itself belongs to the next bucket
	h.Add(9.999)
	h.Add(10)
	h.Add(math.MaxFloat64)
	h.Add(math.Inf(1))
	want := []uint64{2, 2, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.N != 7 {
		t.Fatalf("N = %d, want 7", h.N)
	}
}

// TestSamplerManyBoundariesAtOnce: one Tick that jumps far past many
// interval boundaries must take one sample per boundary crossed, and
// near-overflow clocks must not wedge the sampler.
func TestSamplerManyBoundariesAtOnce(t *testing.T) {
	s := NewSampler(100)
	s.Tick(1000, 2.0) // crosses boundaries 100..1000
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	if s.Mean() != 2.0 {
		t.Fatalf("Mean = %v, want 2", s.Mean())
	}
	if s.Due(1000) {
		t.Fatal("Due immediately after sampling")
	}
	if !s.Due(1100) {
		t.Fatal("not Due at the next boundary")
	}

	big := NewSampler(1 << 62)
	big.Tick(1<<62, 1.0)
	if big.Count() != 1 {
		t.Fatalf("big-interval Count = %d, want 1", big.Count())
	}
}
