// Package stats provides the summary statistics used by the evaluation:
// arithmetic and geometric means (the paper reports AMean and GMean rows),
// fixed-bucket histograms (Figure 14's latency distribution), and a
// periodic sampler (compression ratio is sampled every 10M instructions).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are clamped to a tiny positive value so that a
// single zero (e.g. a 0% improvement) does not collapse the mean to zero;
// this mirrors how architecture papers summarize ratio data.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram is a fixed-bucket histogram over float64 samples. Bucket i
// covers [Bounds[i-1], Bounds[i]); the first bucket is (-inf, Bounds[0])
// and a final implicit overflow bucket covers [Bounds[len-1], +inf).
// Alongside counts it keeps per-bucket sums, so online consumers can
// recover per-bucket means (and piecewise aggregates like the CGMT
// residual) without retaining the raw samples.
type Histogram struct {
	Bounds []float64 // ascending upper bounds
	Counts []uint64  // len(Bounds)+1 buckets
	Sums   []float64 // per-bucket sample sums, same shape as Counts
	N      uint64
	Sum    float64 // sum of all samples
}

// NewHistogram creates a histogram with the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
		Sums:   make([]float64, len(bounds)+1),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	// SearchFloat64s returns the first bound >= x; with half-open buckets
	// [lo, hi) a sample equal to a bound belongs to the next bucket.
	if i < len(h.Bounds) && h.Bounds[i] == x {
		i++
	}
	h.Counts[i]++
	h.Sums[i] += x
	h.N++
	h.Sum += x
}

// Mean returns the mean of all samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Fraction returns each bucket's share of all samples (empty histogram
// returns all zeros).
func (h *Histogram) Fraction() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// Sampler accumulates a value that is sampled every Interval units of an
// externally advanced clock (instructions, in the paper). The reported
// value is the mean of all samples taken.
type Sampler struct {
	Interval uint64
	next     uint64
	sum      float64
	n        uint64
}

// NewSampler returns a sampler that samples every interval ticks.
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		panic("stats: zero sampler interval")
	}
	return &Sampler{Interval: interval, next: interval}
}

// Due reports whether advancing the clock to now would take a sample.
// Callers with expensive-to-compute values use it as a guard.
func (s *Sampler) Due(now uint64) bool { return now >= s.next }

// Tick advances the clock to now and records value once for every
// interval boundary crossed.
func (s *Sampler) Tick(now uint64, value float64) {
	for now >= s.next {
		s.sum += value
		s.n++
		s.next += s.Interval
	}
}

// ForceSample records the value once regardless of the clock; used to
// guarantee at least one sample for very short runs.
func (s *Sampler) ForceSample(value float64) {
	s.sum += value
	s.n++
}

// Mean returns the mean of all samples, or 0 if none were taken.
func (s *Sampler) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Count returns how many samples were taken.
func (s *Sampler) Count() uint64 { return s.n }
