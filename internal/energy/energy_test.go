package energy

import (
	"math"
	"testing"
)

func almost(a, b float64) bool {
	if b == 0 {
		return math.Abs(a) < 1e-18
	}
	return math.Abs(a-b)/math.Abs(b) < 1e-9
}

func TestTableDefaults(t *testing.T) {
	p := TableDefaults()
	if !almost(p.L1AccessJ, 61e-12) || !almost(p.DRAMAccessJ, 74.8e-9) {
		t.Fatalf("wrong Table 7 constants: %+v", p)
	}
}

func TestForScheme(t *testing.T) {
	if p := ForScheme("MORC"); !almost(p.CompressJ, 200e-12) || !almost(p.DecompressJ, 150e-12) {
		t.Fatalf("MORC engine energies: %+v", p)
	}
	if p := ForScheme("Adaptive"); !almost(p.CompressJ, 50e-12) {
		t.Fatalf("Adaptive compression energy: %+v", p)
	}
	if p := ForScheme("SC2"); !almost(p.DecompressJ, 148e-12) {
		t.Fatalf("SC2: %+v", p)
	}
	if p := ForScheme("Uncompressed"); p.CompressJ != 0 || p.DecompressJ != 0 {
		t.Fatalf("Uncompressed charged engine energy: %+v", p)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	p := ForScheme("MORC")
	ev := Events{
		Cycles: 2e9, Cores: 1, L1Accesses: 1e6, LLCAccesses: 1e5,
		DRAMAccesses: 1e4, Compressions: 1e5, DecompressedBytes: 64e5,
	}
	b := Compute(p, ev)
	sum := b.StaticJ + b.DRAMStaticJ + b.DRAMJ + b.SRAMJ + b.CompressJ + b.DecompressJ
	if !almost(b.Total(), sum) {
		t.Fatal("Total != sum of parts")
	}
	if b.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
}

func TestStaticScalesWithTime(t *testing.T) {
	p := ForScheme("MORC")
	b1 := Compute(p, Events{Cycles: 1e9, Cores: 1})
	b2 := Compute(p, Events{Cycles: 2e9, Cores: 1})
	if !almost(b2.StaticJ, 2*b1.StaticJ) {
		t.Fatal("static energy not linear in time")
	}
	// One second at 2GHz: 27mW of L1+LLC static = 13.5mJ... at 1e9 cycles
	// = 0.5s: 13.5mJ.
	if !almost(b1.StaticJ, 0.5*27e-3) {
		t.Fatalf("static = %g J", b1.StaticJ)
	}
}

func TestDRAMDominatesForMissHeavyRuns(t *testing.T) {
	// Sanity: a memory access costs ~1000x an on-chip access (Table 1's
	// motivation), so DRAM dynamic energy dominates SRAM for equal counts.
	p := ForScheme("Uncompressed")
	b := Compute(p, Events{Cycles: 1, Cores: 1, L1Accesses: 1000, LLCAccesses: 1000, DRAMAccesses: 1000})
	if b.DRAMJ < 100*b.SRAMJ {
		t.Fatalf("DRAM %g not ≫ SRAM %g", b.DRAMJ, b.SRAMJ)
	}
}

func TestDecompressionPerOutputByte(t *testing.T) {
	p := ForScheme("MORC")
	b1 := Compute(p, Events{Cycles: 1, Cores: 1, DecompressedBytes: 64})
	b8 := Compute(p, Events{Cycles: 1, Cores: 1, DecompressedBytes: 8 * 64})
	if !almost(b8.DecompressJ, 8*b1.DecompressJ) {
		t.Fatal("decompression energy not linear in output")
	}
	if !almost(b1.DecompressJ, 150e-12) {
		t.Fatalf("one line = %g J", b1.DecompressJ)
	}
}

func TestScaleLLCStatic(t *testing.T) {
	p := ScaleLLCStatic(TableDefaults(), 8)
	if !almost(p.LLCStaticW, 160e-3) {
		t.Fatalf("scaled LLC static = %g", p.LLCStaticW)
	}
}

func TestZeroCoresDefaultsToOne(t *testing.T) {
	b := Compute(TableDefaults(), Events{Cycles: 2e9})
	if b.StaticJ <= 0 {
		t.Fatal("zero-core events produced no static energy")
	}
}
