// Package energy implements the paper's memory-subsystem energy model
// (Table 7, 32nm): per-event dynamic energies for the L1s, the LLC data
// arrays, the compression/decompression engines, and off-chip DRAM
// accesses, plus static power integrated over execution time.
//
// Decompression energy is charged per 64 bytes of decompressed output.
// For the intra-line schemes that equals one charge per hit; for MORC it
// grows with log position, reproducing the paper's observation (§5.3)
// that MORC's decompression energy is more substantial because it
// decompresses from the beginning of the stream.
package energy

// Params holds Table 7's constants. All energies are joules, powers are
// watts.
type Params struct {
	L1StaticW   float64 // 7.0 mW per core
	LLCStaticW  float64 // 20.0 mW per core slice
	DRAMStaticW float64 // 10.9 mW per core
	L1AccessJ   float64 // 61.0 pJ per line access
	LLCDataJ    float64 // 32.0 pJ per line access
	CompressJ   float64 // per compression-engine invocation (one line)
	DecompressJ float64 // per 64B of decompressed output
	DRAMAccessJ float64 // 74.8 nJ per 64B off-chip access
	ClockHz     float64 // to convert cycles to seconds
}

const (
	pJ = 1e-12
	nJ = 1e-9
	mW = 1e-3
)

// TableDefaults returns the Table 7 constants shared by all schemes; the
// compression energies are zero and must be set per scheme.
func TableDefaults() Params {
	return Params{
		L1StaticW:   7.0 * mW,
		LLCStaticW:  20.0 * mW,
		DRAMStaticW: 10.9 * mW,
		L1AccessJ:   61.0 * pJ,
		LLCDataJ:    32.0 * pJ,
		DRAMAccessJ: 74.8 * nJ,
		ClockHz:     2e9,
	}
}

// ForScheme fills in the per-scheme engine energies from Table 7.
// Recognized names: "Uncompressed", "Adaptive", "Decoupled" (C-Pack),
// "SC2", "MORC"/"MORCMerged" (LBE).
func ForScheme(scheme string) Params {
	p := TableDefaults()
	switch scheme {
	case "Adaptive", "Decoupled":
		p.CompressJ = 50.0 * pJ
		p.DecompressJ = 37.5 * pJ
	case "SC2":
		p.CompressJ = 144.0 * pJ
		p.DecompressJ = 148.0 * pJ
	case "MORC", "MORCMerged":
		p.CompressJ = 200.0 * pJ
		p.DecompressJ = 150.0 * pJ
	}
	return p
}

// Events are the counts a simulation produces for one core (or summed
// over cores with Cores set accordingly).
type Events struct {
	Cycles            uint64 // execution time in core cycles
	Cores             int    // number of cores contributing static power
	L1Accesses        uint64 // loads+stores reaching the L1
	LLCAccesses       uint64 // reads + fills + write-backs at the LLC
	DRAMAccesses      uint64 // 64B transfers to/from memory
	Compressions      uint64 // compression-engine invocations
	DecompressedBytes uint64 // decompressed output bytes
}

// Breakdown is the energy split the paper plots in Figure 9b.
type Breakdown struct {
	StaticJ     float64 // L1 + LLC static
	DRAMStaticJ float64
	DRAMJ       float64 // dynamic off-chip access energy
	SRAMJ       float64 // L1 + LLC dynamic
	CompressJ   float64
	DecompressJ float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.StaticJ + b.DRAMStaticJ + b.DRAMJ + b.SRAMJ + b.CompressJ + b.DecompressJ
}

// Compute applies the model.
func Compute(p Params, ev Events) Breakdown {
	seconds := float64(ev.Cycles) / p.ClockHz
	cores := float64(ev.Cores)
	if cores == 0 {
		cores = 1
	}
	return Breakdown{
		StaticJ:     seconds * cores * (p.L1StaticW + p.LLCStaticW),
		DRAMStaticJ: seconds * cores * p.DRAMStaticW,
		DRAMJ:       float64(ev.DRAMAccesses) * p.DRAMAccessJ,
		SRAMJ:       float64(ev.L1Accesses)*p.L1AccessJ + float64(ev.LLCAccesses)*p.LLCDataJ,
		CompressJ:   float64(ev.Compressions) * p.CompressJ,
		DecompressJ: float64(ev.DecompressedBytes) / 64 * p.DecompressJ,
	}
}

// ScaleLLCStatic adjusts LLC static power for a different capacity
// (used by the Uncompressed8x comparison point in Figure 9a: an 8× larger
// SRAM burns proportionally more static power).
func ScaleLLCStatic(p Params, factor float64) Params {
	p.LLCStaticW *= factor
	return p
}
