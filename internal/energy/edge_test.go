package energy

import (
	"math"
	"testing"
)

// TestZeroAccessRunIsAllStatic: a run with zero events of every dynamic
// kind must charge only static energy, and a zero-cycle run must cost
// exactly nothing.
func TestZeroAccessRunIsAllStatic(t *testing.T) {
	p := ForScheme("MORC")
	b := Compute(p, Events{Cycles: 1_000_000, Cores: 4})
	if b.DRAMJ != 0 || b.SRAMJ != 0 || b.CompressJ != 0 || b.DecompressJ != 0 {
		t.Fatalf("zero-access run charged dynamic energy: %+v", b)
	}
	if b.StaticJ <= 0 || b.DRAMStaticJ <= 0 {
		t.Fatalf("zero-access run has no static energy: %+v", b)
	}
	if got := Compute(p, Events{}); got.Total() != 0 {
		t.Fatalf("empty run costs %v J", got.Total())
	}
}

// TestOverflowSizedCountersStayFinite: counters at the top of the
// uint64 range must still produce finite (if astronomically large)
// energies — no NaN or Inf from the float conversions.
func TestOverflowSizedCountersStayFinite(t *testing.T) {
	p := ForScheme("SC2")
	ev := Events{
		Cycles:            math.MaxUint64,
		Cores:             1 << 20,
		L1Accesses:        math.MaxUint64,
		LLCAccesses:       math.MaxUint64,
		DRAMAccesses:      math.MaxUint64,
		Compressions:      math.MaxUint64,
		DecompressedBytes: math.MaxUint64,
	}
	b := Compute(p, ev)
	for _, v := range []float64{b.StaticJ, b.DRAMStaticJ, b.DRAMJ, b.SRAMJ, b.CompressJ, b.DecompressJ, b.Total()} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("overflow-sized counters produced a non-finite component: %+v", b)
		}
	}
}

// TestUnknownSchemeHasNoEngines: a name outside Table 7 gets the shared
// constants but no compression/decompression engine energy, so its
// engine components are exactly zero even with nonzero counts.
func TestUnknownSchemeHasNoEngines(t *testing.T) {
	p := ForScheme("NotAScheme")
	if p.CompressJ != 0 || p.DecompressJ != 0 {
		t.Fatalf("unknown scheme has engine energies: %+v", p)
	}
	b := Compute(p, Events{Compressions: 1 << 30, DecompressedBytes: 1 << 40})
	if b.CompressJ != 0 || b.DecompressJ != 0 {
		t.Fatalf("unknown scheme charged engine energy: %+v", b)
	}
}

// TestScaleLLCStaticZeroFactor: scaling to zero removes the LLC's
// static contribution without touching the other components.
func TestScaleLLCStaticZeroFactor(t *testing.T) {
	p := ScaleLLCStatic(TableDefaults(), 0)
	if p.LLCStaticW != 0 {
		t.Fatalf("LLCStaticW=%v after zero scale", p.LLCStaticW)
	}
	if p.L1StaticW != TableDefaults().L1StaticW || p.DRAMStaticW != TableDefaults().DRAMStaticW {
		t.Fatal("zero scale touched unrelated static power")
	}
}
