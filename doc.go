// Package morc is a from-scratch Go reproduction of "MORC: A
// Manycore-Oriented Compressed Cache" (Nguyen & Wentzlaff, MICRO-48,
// 2015): a log-based, inter-line compressed last-level cache for
// bandwidth-starved manycore processors, together with the full
// evaluation substrate — the LBE/C-Pack/FPC/SC2 compression codecs, the
// Adaptive/Decoupled/SC2 baseline compressed caches, a trace-driven
// manycore simulator with a bandwidth-limited memory system, an energy
// model, and a synthetic SPEC CPU2006 workload generator.
//
// Start with README.md, the examples/ directory, and cmd/morcbench,
// which regenerates every table and figure of the paper's evaluation.
// DESIGN.md maps each experiment to the modules that implement it and
// EXPERIMENTS.md records the paper-vs-measured comparison.
package morc
